package core

import (
	"strings"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// Merge derivation: the paper's custom-aggregate contract (§3.1) includes a
// Merge(other) method that folds a second instance's state into the first,
// which is what makes an aggregate eligible for partitioned (parallel)
// evaluation. The generator can derive Merge automatically whenever the loop
// body Δ is a pure additive fold — every statement has the shape
//
//	SET @f = @f + e
//
// where e is free of field references. Then the aggregate's state after a
// partition is  init(@p_f) + Σ e  and the other instance's net contribution
// is  @other_f − @other_base_f, where a hidden @aggify_base_<f> field records
// the initialization value so it is not double-counted across partitions.

// mergeParts is the output of deriveMerge: the MERGE body plus the hidden
// base fields (and their initialization statements) it needs.
type mergeParts struct {
	block      *ast.Block
	baseFields []ast.ColumnDef
	baseInit   []ast.Stmt
}

// deriveMerge returns the derived MERGE section for a loop whose Δ is an
// additive fold, or nil when the shape does not qualify. delta is the
// normalized loop body, initOrder/paramName the initialized fields and their
// @p_ parameters, fieldOrder every field, and taken the name-collision set.
func deriveMerge(delta *ast.Block, initOrder, fieldOrder []string, initFlag string,
	paramName map[string]string, types map[string]sqltypes.Type, taken map[string]bool) *mergeParts {

	isField := map[string]bool{}
	for _, f := range fieldOrder {
		isField[f] = true
	}
	isInit := map[string]bool{}
	for _, f := range initOrder {
		isInit[f] = true
	}

	// Every Δ statement must be SET @f = @f + e with @f an initialized
	// field and e free of fields and subqueries.
	for _, s := range delta.Stmts {
		set, ok := s.(*ast.SetStmt)
		if !ok || len(set.Targets) != 1 {
			return nil
		}
		f := set.Targets[0]
		if !isInit[f] {
			return nil
		}
		bin, ok := set.Value.(*ast.BinExpr)
		if !ok || bin.Op != sqltypes.OpAdd {
			return nil
		}
		v, ok := bin.L.(*ast.VarRef)
		if !ok || v.Name != f {
			return nil
		}
		if !addendIsFieldFree(bin.R, isField) {
			return nil
		}
	}

	// Hidden base fields record each initialized field's starting value.
	out := &mergeParts{}
	baseName := map[string]string{}
	for _, f := range initOrder {
		bn := freshVar("@aggify_base_"+strings.TrimPrefix(f, "@"), taken, types)
		types[bn] = types[f]
		baseName[f] = bn
		out.baseFields = append(out.baseFields, ast.ColumnDef{Name: bn, Type: types[f]})
		out.baseInit = append(out.baseInit, &ast.SetStmt{Targets: []string{bn}, Value: ast.Var(paramName[f])})
	}

	// Copy branch: self never accumulated a row — adopt the other instance's
	// state wholesale (fields, bases, and the init flag).
	copyBlock := &ast.Block{}
	allFields := append(append([]string{}, fieldOrder...), initFlag)
	for _, f := range initOrder {
		allFields = append(allFields, baseName[f])
	}
	for _, f := range allFields {
		copyBlock.Stmts = append(copyBlock.Stmts,
			&ast.SetStmt{Targets: []string{f}, Value: ast.Var(ast.OtherFieldVar(f))})
	}

	// Add branch: both instances accumulated — fold in the other's net
	// contribution, subtracting its (shared) initialization value.
	addBlock := &ast.Block{}
	for _, f := range initOrder {
		contrib := ast.Bin(sqltypes.OpSub,
			ast.Var(ast.OtherFieldVar(f)),
			ast.Var(ast.OtherFieldVar(baseName[f])))
		addBlock.Stmts = append(addBlock.Stmts,
			&ast.SetStmt{Targets: []string{f}, Value: ast.Bin(sqltypes.OpAdd, ast.Var(f), contrib)})
	}

	// The other instance is a no-op unless it accumulated at least one row
	// (NULL-safe: an untouched @other flag fails the = TRUE test).
	out.block = &ast.Block{Stmts: []ast.Stmt{
		&ast.IfStmt{
			Cond: ast.Eq(ast.Var(ast.OtherFieldVar(initFlag)), ast.Lit(sqltypes.NewBool(true))),
			Then: &ast.IfStmt{
				Cond: ast.Eq(ast.Var(initFlag), ast.Lit(sqltypes.NewBool(true))),
				Then: addBlock,
				Else: copyBlock,
			},
		},
	}}
	return out
}

// addendIsFieldFree reports whether e references no aggregate field and
// contains no subquery, making its per-row contribution independent of the
// accumulated state (the additivity requirement).
func addendIsFieldFree(e ast.Expr, isField map[string]bool) bool {
	free := true
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch t := x.(type) {
		case *ast.Subquery:
			free = false
			return false
		case *ast.InExpr:
			if t.Query != nil {
				free = false
				return false
			}
		case *ast.VarRef:
			if isField[t.Name] {
				free = false
				return false
			}
		}
		return true
	})
	return free
}
