package core

import (
	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// lowerLoopReturns rewrites RETURN statements that sit at cursor-loop
// level into a capture-and-break protocol, so loops the §4.2 check would
// reject as module_return become aggifiable:
//
//	RETURN expr          SET @aggify_ret = expr;
//	                 →   SET @aggify_retflag = 1;
//	                     BREAK;
//
// with, before the loop's DECLARE CURSOR,
//
//	DECLARE @aggify_ret <module return type>;
//	DECLARE @aggify_retflag bit = 0;
//
// and, after DEALLOCATE,
//
//	IF @aggify_retflag = 1 RETURN @aggify_ret;
//
// The BREAK is then normalized by the standard done-flag protocol during
// aggregate construction, and both capture variables are live after the
// loop, so they land in V_term and survive the rewrite.
//
// Loops are processed innermost-first: lowering an inner loop plants its
// conditional RETURN in the enclosing loop's body, which the next pass
// iteration lowers in turn, cascading the early exit outward exactly as
// the original RETURN would have unwound.
//
// A loop is skipped when a RETURN hides inside a loop nested within it —
// BREAK binds to the innermost loop, so the protocol could not reach the
// cursor loop from there (the nested loop gets its own chance first).
func lowerLoopReturns(body *ast.Block, params []ast.Param, returns sqltypes.Type) {
	if returns.ID == sqltypes.TUnknown {
		returns = sqltypes.Int
	}
	processed := map[*ast.WhileStmt]bool{}
	for {
		loops := FindCursorLoops(body)
		var pick *CursorLoop
		// Innermost first: FindCursorLoops orders outer before nested.
		for i := len(loops) - 1; i >= 0; i-- {
			l := loops[i]
			if processed[l.While] {
				continue
			}
			if !hasReturnAtDepth(l.While.Body, 0) || hasReturnAtDepth(l.While.Body, 1) {
				processed[l.While] = true
				continue
			}
			pick = l
			break
		}
		if pick == nil {
			return
		}
		processed[pick.While] = true
		types := typeTable(params, body)
		used := map[string]bool{}
		retVar := freshVar("@aggify_ret", used, types)
		types[retVar] = returns
		flagVar := freshVar("@aggify_retflag", used, types)
		rewriteLoopReturns(pick.While.Body, retVar, flagVar)
		insertAround(pick,
			[]ast.Stmt{
				&ast.DeclareVar{Name: retVar, Type: returns},
				&ast.DeclareVar{Name: flagVar, Type: sqltypes.Bit, Init: ast.Lit(sqltypes.NewBool(false))},
			},
			[]ast.Stmt{
				&ast.IfStmt{
					Cond: ast.Eq(ast.Var(flagVar), ast.Lit(sqltypes.NewBool(true))),
					Then: &ast.ReturnStmt{Value: ast.Var(retVar)},
				},
			})
	}
}

// hasReturnAtDepth reports whether body contains a RETURN at exactly the
// given loop-nesting depth (0 = bound to this loop) — or, for depth 1,
// at depth >= 1 (inside any nested loop).
func hasReturnAtDepth(body ast.Stmt, want int) bool {
	found := false
	var walk func(s ast.Stmt, depth int)
	walk = func(s ast.Stmt, depth int) {
		switch st := s.(type) {
		case nil:
		case *ast.Block:
			for _, inner := range st.Stmts {
				walk(inner, depth)
			}
		case *ast.IfStmt:
			walk(st.Then, depth)
			walk(st.Else, depth)
		case *ast.WhileStmt:
			walk(st.Body, depth+1)
		case *ast.ForStmt:
			walk(st.Body, depth+1)
		case *ast.TryCatch:
			walk(st.Try, depth)
			walk(st.Catch, depth)
		case *ast.ReturnStmt:
			if depth == want || (want > 0 && depth >= want) {
				found = true
			}
		}
	}
	walk(body, 0)
	return found
}

// rewriteLoopReturns replaces loop-level RETURNs with the capture/break
// sequence (same traversal shape as normalizeBreakContinue).
func rewriteLoopReturns(body ast.Stmt, retVar, flagVar string) {
	capture := func(r *ast.ReturnStmt) []ast.Stmt {
		val := r.Value
		if val == nil {
			val = ast.Lit(sqltypes.Null)
		}
		return []ast.Stmt{
			&ast.SetStmt{Targets: []string{retVar}, Value: val},
			&ast.SetStmt{Targets: []string{flagVar}, Value: ast.Lit(sqltypes.NewBool(true))},
			&ast.BreakStmt{},
		}
	}
	var walk func(s ast.Stmt, depth int)
	rewriteList := func(stmts []ast.Stmt, depth int) []ast.Stmt {
		var out []ast.Stmt
		for _, s := range stmts {
			if r, ok := s.(*ast.ReturnStmt); ok && depth == 0 {
				out = append(out, capture(r)...)
				continue
			}
			walk(s, depth)
			out = append(out, s)
		}
		return out
	}
	walk = func(s ast.Stmt, depth int) {
		switch st := s.(type) {
		case nil:
		case *ast.Block:
			st.Stmts = rewriteList(st.Stmts, depth)
		case *ast.IfStmt:
			if r, ok := st.Then.(*ast.ReturnStmt); ok && depth == 0 {
				st.Then = &ast.Block{Stmts: capture(r)}
			} else {
				walk(st.Then, depth)
			}
			if r, ok := st.Else.(*ast.ReturnStmt); ok && depth == 0 {
				st.Else = &ast.Block{Stmts: capture(r)}
			} else if st.Else != nil {
				walk(st.Else, depth)
			}
		case *ast.WhileStmt:
			walk(st.Body, depth+1)
		case *ast.ForStmt:
			walk(st.Body, depth+1)
		case *ast.TryCatch:
			walk(st.Try, depth)
			walk(st.Catch, depth)
		}
	}
	walk(body, 0)
}

// insertAround splices statements immediately before the loop's DECLARE
// CURSOR and immediately after its DEALLOCATE.
func insertAround(loop *CursorLoop, before, after []ast.Stmt) {
	var out []ast.Stmt
	for _, s := range loop.Block.Stmts {
		if s == ast.Stmt(loop.Decl) {
			out = append(out, before...)
		}
		out = append(out, s)
		if s == ast.Stmt(loop.Dealloc) {
			out = append(out, after...)
		}
	}
	loop.Block.Stmts = out
}
