package core_test

// Property tests for the widened rewrites (WHILE-over-variable lifting,
// RETURN-in-loop lowering) and the temp-table-DML loop path, in the style
// of the engine's rewrite property test: every generated module must return
// byte-identical results through all three execution tiers — the
// tree-walking interpreter, the slot-compiled routine pipeline, and the
// Aggify-rewritten form.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/sqltypes"
)

// callTiers invokes fn through all three tiers and fails unless the results
// render byte-identically.
func callTiers(t *testing.T, sess *engine.Session, fn string, args ...sqltypes.Value) string {
	t.Helper()
	interpreted, err := interp.CallFunctionInterpreted(sess, fn, args...)
	if err != nil {
		t.Fatalf("%s(%v) interpreted: %v", fn, args, err)
	}
	compiled, err := interp.CallFunctionByName(sess, fn, args...)
	if err != nil {
		t.Fatalf("%s(%v) compiled: %v", fn, args, err)
	}
	aggified, err := interp.CallFunctionByName(sess, fn+"_aggified", args...)
	if err != nil {
		t.Fatalf("%s_aggified(%v): %v", fn, args, err)
	}
	if compiled.String() != interpreted.String() {
		t.Fatalf("%s(%v): compiled %s vs interpreted %s", fn, args, compiled, interpreted)
	}
	if aggified.String() != interpreted.String() {
		t.Fatalf("%s(%v): aggified %s vs interpreted %s", fn, args, aggified, interpreted)
	}
	return interpreted.String()
}

// randomWhileBody emits 1-3 statements over @acc and the control variable
// @i. Only @acc is ever assigned, so the loop stays liftable.
func randomWhileBody(rng *rand.Rand) string {
	var b strings.Builder
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "    set @acc = @acc + @i * %d;\n", 1+rng.Intn(4))
		case 1:
			fmt.Fprintf(&b, "    if @i %% 2 = %d set @acc = @acc - %d;\n", rng.Intn(2), rng.Intn(5))
		case 2:
			b.WriteString("    if @acc > 40 set @acc = @acc / 2;\n")
		case 3:
			fmt.Fprintf(&b, "    set @acc = @acc * 2 - %d;\n", rng.Intn(3))
		}
	}
	return b.String()
}

// TestWhileLiftRoundTripEquivalence: randomly generated WHILE-over-variable
// loops are lifted to cursor loops over recursive CTEs and aggified, and
// all three tiers agree byte-for-byte on every input.
func TestWhileLiftRoundTripEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		step := 1 + rng.Intn(3)
		src := fmt.Sprintf(`
create function w%d(@n int) returns int as
begin
  declare @i int = 0;
  declare @acc int = %d;
  while @i < @n
  begin
%s    set @i = @i + %d;
  end
  return @acc;
end`, trial, rng.Intn(10), randomWhileBody(rng), step)
		sess := newDB(t, "")
		fn := parseFunc(t, src)
		if err := sess.Eng.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
		res := registerTransformed(t, sess, fn, core.WidenedOptions())
		if len(res.Loops) != 1 {
			t.Fatalf("trial %d: WHILE not lifted+aggified (skipped: %v)\n%s", trial, res.Skipped, src)
		}
		for _, n := range []int64{0, 1, 7, 12} {
			callTiers(t, sess, fmt.Sprintf("w%d", trial), sqltypes.NewInt(n))
		}
	}
}

// TestTempTableDMLLoopEquivalence: cursor loops whose bodies run DML
// against a temp table — insert every iteration plus a random update or
// bounded delete — stay aggifiable, and all three tiers leave the same
// rows behind and return the same value.
func TestTempTableDMLLoopEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	setup := `
create table vals (v int, w int);
insert into vals values
 (3, 1), (-2, 2), (7, 3), (0, 4), (5, 5), (-9, 6), (4, 7), (1, 8), (12, 9), (-1, 10);
create table #t (k int, s int);
`
	for trial := 0; trial < 15; trial++ {
		extra := ""
		switch rng.Intn(3) {
		case 0:
			extra = fmt.Sprintf("    if @v > %d update #t set s = s + 1 where k < @v;\n", rng.Intn(4))
		case 1:
			extra = fmt.Sprintf("    delete from #t where k > %d;\n", 6+rng.Intn(5))
		}
		src := fmt.Sprintf(`
create function g%d(@m int) returns int as
begin
  declare @v int;
  declare @acc int = 0;
  delete from #t;
  declare c cursor for select v from vals order by w;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
    insert into #t values (@v, @v + @m);
%s    set @acc = @acc + @v;
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return @acc * 10000 + (select count(*) from #t) * 100 + (select sum(s) %% 97 from #t);
end`, trial, extra)
		sess := newDB(t, setup)
		fn := parseFunc(t, src)
		if err := sess.Eng.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
		res := registerTransformed(t, sess, fn, core.Options{})
		if len(res.Loops) != 1 {
			t.Fatalf("trial %d: temp-table-DML loop not aggified (skipped: %v)\n%s", trial, res.Skipped, src)
		}
		for _, m := range []int64{0, 3, 50} {
			callTiers(t, sess, fmt.Sprintf("g%d", trial), sqltypes.NewInt(m))
		}
	}
}

// TestNestedLoopReturnCascade: a RETURN inside the inner of two nested
// cursor loops. Lowering processes loops innermost-first, planting the
// conditional RETURN in the outer body, which the next pass lowers in turn
// — so both loops aggify, inner first, and the early exit is preserved at
// every depth.
func TestNestedLoopReturnCascade(t *testing.T) {
	setup := `
create table vals (v int, w int);
insert into vals values
 (3, 1), (-2, 2), (7, 3), (0, 4), (5, 5), (-9, 6), (4, 7), (1, 8), (12, 9), (-1, 10);
`
	src := `
create function firstpair(@lim int) returns int as
begin
  declare @a int;
  declare @b int;
  declare ca cursor for select v from vals order by w;
  open ca;
  fetch next from ca into @a;
  while @@fetch_status = 0
  begin
    declare cb cursor for select v from vals order by w;
    open cb;
    fetch next from cb into @b;
    while @@fetch_status = 0
    begin
      if @a + @b > @lim return @a * 100 + @b;
      fetch next from cb into @b;
    end
    close cb;
    deallocate cb;
    fetch next from ca into @a;
  end
  close ca;
  deallocate ca;
  return 0 - 1;
end`
	sess := newDB(t, setup)
	fn := parseFunc(t, src)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.WidenedOptions())
	if len(res.Loops) != 2 {
		t.Fatalf("expected both loops aggified after RETURN lowering, got %d (skipped: %v)", len(res.Loops), res.Skipped)
	}
	if res.Loops[0].Cursor != "cb" || res.Loops[1].Cursor != "ca" {
		t.Fatalf("transformation order = %s, %s; want inner (cb) first", res.Loops[0].Cursor, res.Loops[1].Cursor)
	}
	// -100 returns on the very first pair, 5 and 11 part-way through, 100
	// never (the loops run dry and the fallthrough -1 is returned).
	for _, lim := range []int64{-100, 5, 11, 100} {
		callTiers(t, sess, "firstpair", sqltypes.NewInt(lim))
	}
}

// TestReturnLoweringSingleLoop pins the lowered shape for the simple case:
// one cursor loop with an early RETURN becomes aggifiable under the widened
// options and is rejected (module_return) under the paper's baseline.
func TestReturnLoweringSingleLoop(t *testing.T) {
	setup := `
create table vals (v int, w int);
insert into vals values (3, 1), (-2, 2), (7, 3), (0, 4), (5, 5);
`
	src := `
create function firstbig(@lim int) returns int as
begin
  declare @v int;
  declare c cursor for select v from vals order by w;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
    if @v > @lim return @v;
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return 0 - 1;
end`
	sess := newDB(t, setup)
	fn := parseFunc(t, src)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	_, base, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Loops) != 0 || len(base.Skipped) != 1 {
		t.Fatalf("baseline should reject the RETURN loop: loops=%d skipped=%v", len(base.Loops), base.Skipped)
	}
	var na *core.NotAggifiableError
	if !asNotAggifiableErr(base.Skipped[0], &na) || na.Code != core.ReasonModuleReturn {
		t.Fatalf("baseline rejection = %v, want code %s", base.Skipped[0], core.ReasonModuleReturn)
	}
	res := registerTransformed(t, sess, fn, core.WidenedOptions())
	if len(res.Loops) != 1 {
		t.Fatalf("widened options should aggify the RETURN loop (skipped: %v)", res.Skipped)
	}
	for _, lim := range []int64{-100, 4, 100} {
		callTiers(t, sess, "firstbig", sqltypes.NewInt(lim))
	}
}

func asNotAggifiableErr(err error, target **core.NotAggifiableError) bool {
	na, ok := err.(*core.NotAggifiableError)
	if ok {
		*target = na
	}
	return ok
}
