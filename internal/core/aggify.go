package core

import (
	"fmt"
	"sort"
	"strings"

	"aggify/internal/analysis"
	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// Options configure the transformation.
type Options struct {
	// LiftForLoops enables the §8.1 enhancement: counted FOR loops are
	// rewritten into cursor loops over recursive CTEs and then aggified.
	LiftForLoops bool
	// LiftWhileLoops extends the §8.1 idea to WHILE-over-variable loops:
	// a WHILE whose condition is driven by a single variable updated by
	// one pure assignment per iteration is rewritten into a cursor loop
	// over a recursive CTE enumerating that variable's value sequence,
	// which the main transformation then aggifies. Applies only when the
	// control variable is dead after the loop (its final value is
	// unobservable, so stripping the update is safe).
	LiftWhileLoops bool
	// LowerLoopReturns rewrites RETURN statements at cursor-loop level
	// into the done-flag BREAK protocol plus a post-loop conditional
	// RETURN, turning §4.2's module_return rejection into an aggifiable
	// shape.
	LowerLoopReturns bool
	// KeepDeadDeclarations disables the §6.2 dead-declaration cleanup.
	KeepDeadDeclarations bool
}

// WidenedOptions enables every rewrite-widening pass; the applicability
// scan uses it to measure coverage beyond the paper's baseline rewrite.
func WidenedOptions() Options {
	return Options{LiftForLoops: true, LiftWhileLoops: true, LowerLoopReturns: true}
}

// LoopResult reports one transformed loop.
type LoopResult struct {
	Cursor    string
	Aggregate *ast.CreateAggregate
	// OrderSensitive marks aggregates from ORDER BY cursors: registration
	// must enforce the streaming-aggregate rule (paper Eq. 6).
	OrderSensitive bool
	// The paper's variable sets, for inspection and tests.
	VDelta []string // V_Δ: variables referenced in the loop body
	VFetch []string // V_fetch: variables assigned by FETCH
	VLocal []string // V_local: loop-local variables
	Fields []string // V_F (Eq. 1), without the isInitialized flag
	Params []string // P_accum (Eq. 3), in parameter order
	VInit  []string // V_init (Eq. 4)
	VTerm  []string // V_term: live at loop end
}

// Result is the outcome of transforming a module body.
type Result struct {
	// Loops lists the transformed loops, innermost first.
	Loops []*LoopResult
	// Skipped lists loops that failed the applicability check, with
	// reasons.
	Skipped []error
}

// Aggregates returns the generated aggregate definitions in registration
// order.
func (r *Result) Aggregates() []*ast.CreateAggregate {
	out := make([]*ast.CreateAggregate, len(r.Loops))
	for i, l := range r.Loops {
		out[i] = l.Aggregate
	}
	return out
}

// TransformFunction applies Aggify to a scalar UDF, returning the rewritten
// function (a deep copy; the input is not modified) and the generated
// aggregates. Functions with no transformable loops return a Result with
// empty Loops and the original definition cloned.
func TransformFunction(def *ast.CreateFunction, opts Options) (*ast.CreateFunction, *Result, error) {
	clone := ast.CloneStmt(def).(*ast.CreateFunction)
	res, err := transformBody(clone.Name, clone.Params, clone.Body, clone.Returns, opts)
	if err != nil {
		return nil, nil, err
	}
	return clone, res, nil
}

// TransformProcedure applies Aggify to a stored procedure. Procedures
// return an int status code in the dialect, so RETURN lowering declares
// its capture variable as int.
func TransformProcedure(def *ast.CreateProcedure, opts Options) (*ast.CreateProcedure, *Result, error) {
	clone := ast.CloneStmt(def).(*ast.CreateProcedure)
	res, err := transformBody(clone.Name, clone.Params, clone.Body, sqltypes.Int, opts)
	if err != nil {
		return nil, nil, err
	}
	return clone, res, nil
}

// TransformBlock applies Aggify to a bare statement block (client-side
// programs); params declares the inputs bound before the block runs.
func TransformBlock(owner string, params []ast.Param, body *ast.Block, opts Options) (*ast.Block, *Result, error) {
	clone := ast.CloneStmt(body).(*ast.Block)
	res, err := transformBody(owner, params, clone, sqltypes.Int, opts)
	if err != nil {
		return nil, nil, err
	}
	return clone, res, nil
}

// transformBody is Algorithm 1 driven to fixpoint: it transforms innermost
// loops first (§6.3.1) and stops when no transformable loops remain.
// returns is the enclosing module's declared return type, needed by the
// RETURN-lowering pass to type its capture variable.
func transformBody(owner string, params []ast.Param, body *ast.Block, returns sqltypes.Type, opts Options) (*Result, error) {
	if opts.LiftForLoops {
		liftForLoops(body)
	}
	if opts.LiftWhileLoops {
		liftWhileLoops(body, params)
	}
	if opts.LowerLoopReturns {
		lowerLoopReturns(body, params, returns)
	}
	res := &Result{}
	counter := 0
	skippedWhiles := map[*ast.WhileStmt]bool{}
	for {
		loops := FindCursorLoops(body)
		var pick *CursorLoop
		for _, l := range loops {
			if skippedWhiles[l.While] {
				continue
			}
			// Innermost first: the loop body must contain no other cursor's
			// operations that are themselves transformable loops.
			if ContainsCursorOps(l.While.Body, l.Cursor) {
				inner := FindCursorLoops(l.While.Body)
				allSkipped := true
				for _, il := range inner {
					if !skippedWhiles[il.While] {
						allSkipped = false
						break
					}
				}
				// Untransformable inner cursor ops stay in Δ (nested loops
				// are legal inside aggregates); but if an inner loop is
				// still pending transformation, do it first.
				if !allSkipped {
					continue
				}
			}
			pick = l
			break
		}
		if pick == nil {
			return res, nil
		}
		counter++
		lr, err := transformLoop(owner, params, body, pick, counter)
		if err != nil {
			if _, notOK := err.(*NotAggifiableError); notOK {
				res.Skipped = append(res.Skipped, err)
				skippedWhiles[pick.While] = true
				continue
			}
			return nil, err
		}
		res.Loops = append(res.Loops, lr)
		if !opts.KeepDeadDeclarations {
			removeDeadDeclarations(body, params)
		}
	}
}

// typeTable collects declared types of variables (parameters + DECLAREs).
func typeTable(params []ast.Param, body ast.Stmt) map[string]sqltypes.Type {
	types := map[string]sqltypes.Type{}
	for _, p := range params {
		types[p.Name] = p.Type
	}
	ast.WalkStmt(body, func(s ast.Stmt) bool {
		if d, ok := s.(*ast.DeclareVar); ok {
			types[d.Name] = d.Type
		}
		return true
	})
	return types
}

// transformLoop transforms one cursor loop in place.
func transformLoop(owner string, params []ast.Param, body *ast.Block, loop *CursorLoop, counter int) (*LoopResult, error) {
	if err := CheckApplicability(loop, OuterTableVars(body, loop.While.Body)); err != nil {
		return nil, err
	}
	types := typeTable(params, body)

	// Dataflow analysis over the module body with parameters modeled as
	// entry definitions (Algorithm 1, line 1).
	analysisBody := &ast.Block{}
	for _, p := range params {
		// Parameters are bound by the caller: model them as declarations
		// with a (non-nil) initializer so they count as non-NULL priors.
		init := p.Default
		if init == nil {
			init = ast.Var(p.Name)
		}
		analysisBody.Stmts = append(analysisBody.Stmts, &ast.DeclareVar{Name: p.Name, Type: p.Type, Init: init})
	}
	analysisBody.Stmts = append(analysisBody.Stmts, body)
	g := analysis.Build(analysisBody)
	a := analysis.Analyze(g)
	region := a.NodesOf(loop.While) // Δ plus the loop condition node

	// V_Δ, V_fetch, V_local (§5.1).
	vDelta := map[string]bool{}
	usedInDelta := map[string]bool{}
	declaredInDelta := map[string]bool{}
	for n := range region {
		if n == g.CondNode[loop.While] {
			continue // the WHILE condition reads only @@fetch_status
		}
		for _, v := range g.Defs[n.ID] {
			if v != ast.FetchStatusVar {
				vDelta[v] = true
			}
		}
		for _, v := range g.Uses[n.ID] {
			if v != ast.FetchStatusVar {
				vDelta[v] = true
				usedInDelta[v] = true
			}
		}
	}
	ast.WalkStmt(loop.While.Body, func(s ast.Stmt) bool {
		if d, ok := s.(*ast.DeclareVar); ok {
			declaredInDelta[d.Name] = true
		}
		return true
	})
	vFetch := map[string]bool{}
	for _, v := range loop.FetchVars() {
		vFetch[v] = true
	}

	// The program point after the loop: the CLOSE statement's node.
	afterNode := g.StmtNode[loop.Close]
	if afterNode == nil {
		return nil, fmt.Errorf("aggify: internal: CLOSE node missing from CFG")
	}
	liveAfter := func(v string) bool { return a.LiveAtEntry(afterNode, v) }

	vLocal := map[string]bool{}
	for v := range declaredInDelta {
		if !liveAfter(v) {
			vLocal[v] = true
		}
	}

	// V_F = V_Δ − (V_fetch ∪ V_local)  (Eq. 1).
	vF := map[string]bool{}
	for v := range vDelta {
		if !vFetch[v] && !vLocal[v] {
			vF[v] = true
		}
	}

	// P_accum (Eqs. 2–3): variables used in Δ with a reaching definition
	// outside the loop.
	pAccum := map[string]bool{}
	for n := range region {
		for _, v := range g.Uses[n.ID] {
			if v == ast.FetchStatusVar || pAccum[v] {
				continue
			}
			for _, d := range a.ReachingDefs(n, v) {
				if !region[d.Node] {
					pAccum[v] = true
					break
				}
			}
		}
	}

	// V_init = P_accum − V_fetch  (Eq. 4).
	vInit := map[string]bool{}
	for v := range pAccum {
		if !vFetch[v] {
			vInit[v] = true
		}
	}
	// Every initialized variable must be a field.
	for v := range vInit {
		if !vF[v] {
			vF[v] = true
		}
	}

	// V_term: fields live at the end of the loop (§5.4).
	var vTerm []string
	for v := range vF {
		if liveAfter(v) {
			vTerm = append(vTerm, v)
		}
	}
	sort.Strings(vTerm)

	// Missing types mean the variable was never declared.
	for v := range vF {
		if _, ok := types[v]; !ok {
			return nil, notAggifiable(ReasonNoDeclaration, "variable %s has no visible declaration", v)
		}
	}

	// Parameter list: fetch variables first (they become the projected
	// column arguments), then the initialized fields.
	initFlag := freshVar("@aggify_init", vDelta, types)
	doneFlag := freshVar("@aggify_done", vDelta, types)

	var paramOrder []string // P_accum in final order
	var aggParams []ast.Param
	for _, v := range loop.FetchVars() {
		if !pAccum[v] {
			// The fetch variable is unused inside the loop body; it still
			// becomes a parameter so the aggregate signature matches the
			// projection (its value is simply unused).
			if !usedInDelta[v] {
				continue
			}
		}
		paramOrder = append(paramOrder, v)
		aggParams = append(aggParams, ast.Param{Name: v, Type: types[v]})
	}
	var initOrder []string
	for v := range vInit {
		initOrder = append(initOrder, v)
	}
	sort.Strings(initOrder)
	paramName := map[string]string{}
	for _, v := range initOrder {
		pn := "@p_" + strings.TrimPrefix(v, "@")
		for vDelta[pn] || types[pn].ID != sqltypes.TUnknown {
			pn += "_"
		}
		paramName[v] = pn
		paramOrder = append(paramOrder, v)
		aggParams = append(aggParams, ast.Param{Name: pn, Type: types[v]})
	}

	// Fields: initialized fields, then remaining fields, then the flags.
	var fieldOrder []string
	for _, v := range initOrder {
		fieldOrder = append(fieldOrder, v)
	}
	var rest []string
	for v := range vF {
		if !vInit[v] {
			rest = append(rest, v)
		}
	}
	sort.Strings(rest)
	fieldOrder = append(fieldOrder, rest...)

	usesBreak := loopUsesBreak(loop.While.Body)
	fields := make([]ast.ColumnDef, 0, len(fieldOrder)+2)
	for _, v := range fieldOrder {
		fields = append(fields, ast.ColumnDef{Name: v, Type: types[v]})
	}
	fields = append(fields, ast.ColumnDef{Name: initFlag, Type: sqltypes.Bit})
	if usesBreak {
		fields = append(fields, ast.ColumnDef{Name: doneFlag, Type: sqltypes.Bit})
	}

	// Accumulate body: the guarded field-initialization block, then Δ with
	// the inner FETCH removed and BREAK/CONTINUE normalized.
	initBlock := &ast.Block{}
	for _, v := range initOrder {
		initBlock.Stmts = append(initBlock.Stmts, &ast.SetStmt{Targets: []string{v}, Value: ast.Var(paramName[v])})
	}
	if usesBreak {
		initBlock.Stmts = append(initBlock.Stmts, &ast.SetStmt{Targets: []string{doneFlag}, Value: ast.Lit(sqltypes.NewBool(false))})
	}
	initBlock.Stmts = append(initBlock.Stmts, &ast.SetStmt{Targets: []string{initFlag}, Value: ast.Lit(sqltypes.NewBool(true))})

	delta := ast.CloneStmt(loop.While.Body).(*ast.Block)
	stripInnerFetch(delta, loop.Cursor)
	normalizeBreakContinue(delta, doneFlag)

	accum := &ast.Block{Stmts: []ast.Stmt{
		&ast.IfStmt{
			Cond: ast.Eq(ast.Var(initFlag), ast.Lit(sqltypes.NewBool(false))),
			Then: initBlock,
		},
	}}
	if usesBreak {
		accum.Stmts = append(accum.Stmts, &ast.IfStmt{
			Cond: ast.Eq(ast.Var(doneFlag), ast.Lit(sqltypes.NewBool(true))),
			Then: &ast.ReturnStmt{},
		})
	}
	accum.Stmts = append(accum.Stmts, delta.Stmts...)

	// Derive the contract's Merge method when Δ is a pure additive fold over
	// an unordered cursor (BREAK makes the fold order-dependent, ORDER BY
	// makes the whole aggregate order-sensitive). The hidden base fields it
	// introduces record each initialized field's starting value; they are
	// set alongside the regular initialization.
	var merge *mergeParts
	if !usesBreak && len(loop.Decl.Query.OrderBy) == 0 {
		merge = deriveMerge(delta, initOrder, fieldOrder, initFlag, paramName, types, vDelta)
	}
	if merge != nil {
		fields = append(fields, merge.baseFields...)
		last := initBlock.Stmts[len(initBlock.Stmts)-1]
		initBlock.Stmts = append(initBlock.Stmts[:len(initBlock.Stmts)-1], merge.baseInit...)
		initBlock.Stmts = append(initBlock.Stmts, last)
	}

	// An empty cursor result leaves the loop body unexecuted and the live
	// variables at their prior values, while the aggregate's Terminate
	// returns its (never-initialized, NULL) fields. The paper's direct
	// rewrite (Fig. 7) is only exact when every V_term variable is NULL
	// before the loop — true for its running example, but not in general.
	// When some prior may be non-NULL, we generate a guarded rewrite: the
	// aggregate additionally returns its isInitialized flag, and the
	// assignment to the live variables only happens when at least one row
	// was accumulated.
	condNode := g.CondNode[loop.While]
	nullPrior := func(v string) bool {
		for _, d := range a.ReachingDefs(condNode, v) {
			if region[d.Node] {
				continue // defs inside Δ only matter when the loop ran
			}
			dv, ok := d.Node.Stmt.(*ast.DeclareVar)
			if !ok || dv.Init != nil {
				return false
			}
		}
		return true
	}
	guarded := false
	for _, v := range vTerm {
		if !nullPrior(v) {
			guarded = true
		}
	}

	// Terminate (§5.4).
	var returns sqltypes.Type
	var term *ast.Block
	switch {
	case len(vTerm) == 0:
		returns = sqltypes.Int
		term = &ast.Block{Stmts: []ast.Stmt{&ast.ReturnStmt{Value: ast.IntLit(0)}}}
	case guarded:
		returns = sqltypes.Type{ID: sqltypes.TTuple}
		items := []ast.SelectItem{{Expr: ast.Var(initFlag), Alias: "aggify_flag"}}
		for _, v := range vTerm {
			items = append(items, ast.SelectItem{Expr: ast.Var(v), Alias: strings.TrimPrefix(v, "@")})
		}
		term = &ast.Block{Stmts: []ast.Stmt{&ast.ReturnStmt{
			Value: &ast.Subquery{Query: &ast.Select{Items: items}},
		}}}
	case len(vTerm) == 1:
		returns = types[vTerm[0]]
		term = &ast.Block{Stmts: []ast.Stmt{&ast.ReturnStmt{Value: ast.Var(vTerm[0])}}}
	default:
		returns = sqltypes.Type{ID: sqltypes.TTuple}
		items := make([]ast.SelectItem, len(vTerm))
		for i, v := range vTerm {
			items[i] = ast.SelectItem{Expr: ast.Var(v), Alias: strings.TrimPrefix(v, "@")}
		}
		term = &ast.Block{Stmts: []ast.Stmt{&ast.ReturnStmt{
			Value: &ast.Subquery{Query: &ast.Select{Items: items}},
		}}}
	}

	aggName := fmt.Sprintf("%s_%s_agg%d", sanitizeName(owner), sanitizeName(loop.Cursor), counter)
	agg := &ast.CreateAggregate{
		Name:    aggName,
		Params:  aggParams,
		Returns: returns,
		Fields:  fields,
		Init: &ast.Block{Stmts: []ast.Stmt{
			&ast.SetStmt{Targets: []string{initFlag}, Value: ast.Lit(sqltypes.NewBool(false))},
		}},
		Accum:     accum,
		Terminate: term,
	}
	if merge != nil {
		agg.Merge = merge.block
	}

	// Rewrite rule (Eqs. 5–6): replace the loop with
	//   SET <V_term> = (SELECT Agg(args) FROM (Q) aggify_q)
	// with ORDER BY preserved inside the derived table and the enforcement
	// marker set when the cursor query was ordered.
	q := ast.CloneSelect(loop.Decl.Query)
	colNames, err := projectionNames(q)
	if err != nil {
		return nil, err
	}
	fetchCol := map[string]string{}
	for i, v := range loop.FetchVars() {
		fetchCol[v] = colNames[i]
	}
	args := make([]ast.Expr, len(paramOrder))
	for i, v := range paramOrder {
		if vFetch[v] {
			args[i] = ast.QCol("aggify_q", fetchCol[v])
		} else {
			args[i] = ast.Var(v)
		}
	}
	ordered := len(q.OrderBy) > 0
	sel := &ast.Select{
		Items:         []ast.SelectItem{{Expr: &ast.FuncCall{Name: aggName, Args: args}}},
		From:          []ast.TableExpr{&ast.SubqueryRef{Query: q, Alias: "aggify_q"}},
		OrderEnforced: ordered,
	}
	// The replacement statement assigns the aggregate's result to the live
	// variables. Tuple results are extracted with tuple_get (the paper's
	// dialect-specific "aggVal" attribute extraction) so that the rewritten
	// body stays within Froid's inlinable subset for the Aggify+ pipeline.
	var replacement ast.Stmt
	switch {
	case len(vTerm) == 0:
		dummy := freshVar("@aggify_r", vDelta, types)
		replacement = &ast.Block{Stmts: []ast.Stmt{
			&ast.DeclareVar{Name: dummy, Type: sqltypes.Int},
			&ast.SetStmt{Targets: []string{dummy}, Value: &ast.Subquery{Query: sel}},
		}}
	case guarded:
		// Terminate returns (isInitialized, vTerm...); only assign when the
		// loop body ran at least once (empty cursors keep prior values).
		tupleVar := freshVar("@aggify_v", vDelta, types)
		get := func(i int) ast.Expr {
			return &ast.FuncCall{Name: "tuple_get", Args: []ast.Expr{ast.Var(tupleVar), ast.IntLit(int64(i))}}
		}
		assign := &ast.Block{}
		for i, v := range vTerm {
			assign.Stmts = append(assign.Stmts, &ast.SetStmt{Targets: []string{v}, Value: get(i + 1)})
		}
		replacement = &ast.Block{Stmts: []ast.Stmt{
			&ast.DeclareVar{Name: tupleVar, Type: sqltypes.Type{ID: sqltypes.TTuple}},
			&ast.SetStmt{Targets: []string{tupleVar}, Value: &ast.Subquery{Query: sel}},
			&ast.IfStmt{Cond: ast.Eq(get(0), ast.Lit(sqltypes.NewBool(true))), Then: assign},
		}}
	case len(vTerm) == 1:
		replacement = &ast.SetStmt{Targets: vTerm, Value: &ast.Subquery{Query: sel}}
	default:
		tupleVar := freshVar("@aggify_v", vDelta, types)
		block := &ast.Block{Stmts: []ast.Stmt{
			&ast.DeclareVar{Name: tupleVar, Type: sqltypes.Type{ID: sqltypes.TTuple}},
			&ast.SetStmt{Targets: []string{tupleVar}, Value: &ast.Subquery{Query: sel}},
		}}
		for i, v := range vTerm {
			block.Stmts = append(block.Stmts, &ast.SetStmt{Targets: []string{v},
				Value: &ast.FuncCall{Name: "tuple_get", Args: []ast.Expr{ast.Var(tupleVar), ast.IntLit(int64(i))}}})
		}
		replacement = block
	}
	spliceLoop(loop, replacement)

	lr := &LoopResult{
		Cursor:         loop.Cursor,
		Aggregate:      agg,
		OrderSensitive: ordered,
		VDelta:         sortedKeys(vDelta),
		VFetch:         append([]string(nil), loop.FetchVars()...),
		VLocal:         sortedKeys(vLocal),
		Fields:         fieldOrder,
		Params:         paramOrder,
		VInit:          initOrder,
		VTerm:          vTerm,
	}
	return lr, nil
}

// projectionNames derives (or synthesizes, by aliasing in place) the output
// column names of the cursor query's projection.
func projectionNames(q *ast.Select) ([]string, error) {
	names := make([]string, len(q.Items))
	seen := map[string]bool{}
	for i := range q.Items {
		it := &q.Items[i]
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ast.ColRef); ok {
				name = cr.Name
			}
		}
		if name == "" || seen[name] {
			name = fmt.Sprintf("aggify_c%d", i+1)
			it.Alias = name
		}
		seen[name] = true
		names[i] = name
	}
	return names, nil
}

// spliceLoop removes the cursor machinery from the loop's block and swaps
// the WHILE for the replacement statement.
func spliceLoop(loop *CursorLoop, replacement ast.Stmt) {
	drop := map[ast.Stmt]bool{
		loop.Decl:    true,
		loop.Open:    true,
		loop.Prime:   true,
		loop.Close:   true,
		loop.Dealloc: true,
	}
	var out []ast.Stmt
	for _, s := range loop.Block.Stmts {
		if drop[s] {
			continue
		}
		if s == ast.Stmt(loop.While) {
			out = append(out, replacement)
			continue
		}
		out = append(out, s)
	}
	loop.Block.Stmts = out
}

// loopUsesBreak reports whether Δ contains BREAK bound to the cursor loop
// itself (not to a loop nested inside Δ).
func loopUsesBreak(body ast.Stmt) bool {
	found := false
	var walk func(s ast.Stmt, depth int)
	walk = func(s ast.Stmt, depth int) {
		switch st := s.(type) {
		case nil:
		case *ast.Block:
			for _, inner := range st.Stmts {
				walk(inner, depth)
			}
		case *ast.IfStmt:
			walk(st.Then, depth)
			walk(st.Else, depth)
		case *ast.WhileStmt:
			walk(st.Body, depth+1)
		case *ast.ForStmt:
			walk(st.Body, depth+1)
		case *ast.TryCatch:
			walk(st.Try, depth)
			walk(st.Catch, depth)
		case *ast.BreakStmt:
			if depth == 0 {
				found = true
			}
		}
	}
	walk(body, 0)
	return found
}

// stripInnerFetch removes FETCH statements of the given cursor from the
// (cloned) loop body.
func stripInnerFetch(b *ast.Block, cursor string) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		if f, ok := s.(*ast.FetchStmt); ok && f.Cursor == cursor {
			continue
		}
		out = append(out, s)
	}
	b.Stmts = out
}

// normalizeBreakContinue rewrites loop-level BREAK into the done-flag
// protocol and loop-level CONTINUE into an early return from Accumulate
// (§4.2's "unconditional jumps ... using boolean variables").
func normalizeBreakContinue(body ast.Stmt, doneFlag string) {
	var walk func(s ast.Stmt, depth int)
	rewriteList := func(stmts []ast.Stmt, depth int) []ast.Stmt {
		var out []ast.Stmt
		for _, s := range stmts {
			switch s.(type) {
			case *ast.BreakStmt:
				if depth == 0 {
					out = append(out,
						&ast.SetStmt{Targets: []string{doneFlag}, Value: ast.Lit(sqltypes.NewBool(true))},
						&ast.ReturnStmt{})
					continue
				}
			case *ast.ContinueStmt:
				if depth == 0 {
					out = append(out, &ast.ReturnStmt{})
					continue
				}
			}
			walk(s, depth)
			out = append(out, s)
		}
		return out
	}
	walk = func(s ast.Stmt, depth int) {
		switch st := s.(type) {
		case nil:
		case *ast.Block:
			st.Stmts = rewriteList(st.Stmts, depth)
		case *ast.IfStmt:
			if _, isBreak := st.Then.(*ast.BreakStmt); isBreak && depth == 0 {
				st.Then = &ast.Block{Stmts: []ast.Stmt{
					&ast.SetStmt{Targets: []string{doneFlag}, Value: ast.Lit(sqltypes.NewBool(true))},
					&ast.ReturnStmt{},
				}}
			} else if _, isCont := st.Then.(*ast.ContinueStmt); isCont && depth == 0 {
				st.Then = &ast.ReturnStmt{}
			} else {
				walk(st.Then, depth)
			}
			if st.Else != nil {
				if _, isBreak := st.Else.(*ast.BreakStmt); isBreak && depth == 0 {
					st.Else = &ast.Block{Stmts: []ast.Stmt{
						&ast.SetStmt{Targets: []string{doneFlag}, Value: ast.Lit(sqltypes.NewBool(true))},
						&ast.ReturnStmt{},
					}}
				} else if _, isCont := st.Else.(*ast.ContinueStmt); isCont && depth == 0 {
					st.Else = &ast.ReturnStmt{}
				} else {
					walk(st.Else, depth)
				}
			}
		case *ast.WhileStmt:
			walk(st.Body, depth+1)
		case *ast.ForStmt:
			walk(st.Body, depth+1)
		case *ast.TryCatch:
			walk(st.Try, depth)
			walk(st.Catch, depth)
		}
	}
	walk(body, 0)
}

// removeDeadDeclarations drops DECLARE statements for variables that are
// no longer referenced anywhere in the body (§6.2); initializers with
// function calls or subqueries are conservatively kept.
func removeDeadDeclarations(body *ast.Block, params []ast.Param) {
	for {
		referenced := map[string]bool{}
		declOf := map[string]*ast.DeclareVar{}
		ast.WalkStmt(body, func(s ast.Stmt) bool {
			if d, ok := s.(*ast.DeclareVar); ok {
				declOf[d.Name] = d
				// The initializer's reads count as references of OTHER vars.
				if d.Init != nil {
					for v := range ast.VarsInExpr(d.Init) {
						referenced[v] = true
					}
				}
				return true
			}
			defs, uses := analysis.StmtDefsUses(s, nil)
			for _, v := range defs {
				referenced[v] = true
			}
			for _, v := range uses {
				referenced[v] = true
			}
			// Condition expressions of composite statements.
			switch st := s.(type) {
			case *ast.IfStmt:
				for v := range ast.VarsInExpr(st.Cond) {
					referenced[v] = true
				}
			case *ast.WhileStmt:
				for v := range ast.VarsInExpr(st.Cond) {
					referenced[v] = true
				}
			case *ast.ForStmt:
				referenced[st.InitVar] = true
				referenced[st.PostVar] = true
				for v := range ast.VarsInExpr(st.Cond) {
					referenced[v] = true
				}
			case *ast.DeclareCursor:
				for v := range ast.VarsInSelect(st.Query) {
					referenced[v] = true
				}
			}
			return true
		})
		var dead []*ast.DeclareVar
		for name, d := range declOf {
			if referenced[name] {
				continue
			}
			if d.Init != nil && initHasSideEffects(d.Init) {
				continue
			}
			dead = append(dead, d)
		}
		if len(dead) == 0 {
			return
		}
		deadSet := map[ast.Stmt]bool{}
		for _, d := range dead {
			deadSet[d] = true
		}
		removeStmts(body, deadSet)
	}
}

func initHasSideEffects(e ast.Expr) bool {
	impure := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch x.(type) {
		case *ast.FuncCall, *ast.Subquery:
			impure = true
		}
		return true
	})
	return impure
}

func removeStmts(s ast.Stmt, dead map[ast.Stmt]bool) {
	switch st := s.(type) {
	case nil:
	case *ast.Block:
		var out []ast.Stmt
		for _, inner := range st.Stmts {
			if dead[inner] {
				continue
			}
			removeStmts(inner, dead)
			out = append(out, inner)
		}
		st.Stmts = out
	case *ast.IfStmt:
		removeStmts(st.Then, dead)
		removeStmts(st.Else, dead)
	case *ast.WhileStmt:
		removeStmts(st.Body, dead)
	case *ast.ForStmt:
		removeStmts(st.Body, dead)
	case *ast.TryCatch:
		removeStmts(st.Try, dead)
		removeStmts(st.Catch, dead)
	}
}

func freshVar(base string, used map[string]bool, types map[string]sqltypes.Type) string {
	name := base
	for used[name] || types[name].ID != sqltypes.TUnknown {
		name += "_"
	}
	return name
}

func sanitizeName(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '_' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "anon"
	}
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
