package core

import (
	"fmt"

	"aggify/internal/analysis"
	"aggify/internal/ast"
)

// liftWhileLoops rewrites WHILE-over-variable loops into cursor loops
// over recursive CTEs, extending the §8.1 FOR-loop lifting to the most
// common shape in the corpus (rubbos/rubis utility functions iterate a
// scalar with WHILE, not FOR). A loop
//
//	WHILE cond BEGIN body; SET @i = post END
//
// whose condition is driven by @i becomes a cursor loop over the value
// sequence @i, post(@i), post(post(@i)), ... — exactly the CTE the FOR
// lift builds, seeded with the variable's current value.
//
// The lift is applied only when it is provably equivalence-preserving:
//
//   - cond does not read @@fetch_status (that is a cursor loop);
//   - the last top-level body statement is a single-target SET of one
//     variable read by cond (the control variable), and no other
//     statement in the body assigns any variable read by cond or post —
//     the iteration space is statically a relation;
//   - cond and post are pure scalar expressions (no subqueries, no
//     function calls), so evaluating them inside the CTE cannot observe
//     or change database state;
//   - no BREAK or CONTINUE binds to the loop (either would decouple the
//     fetched sequence from the executed iterations);
//   - the control variable is dead after the loop. The interpreted loop
//     leaves it at the first failing value while the lifted cursor loop
//     leaves it at the last fetched (passing) value; requiring deadness
//     makes the difference unobservable instead of compensating for it.
//
// Infinite loops change failure mode: the interpreter spins until
// interrupted, while the lifted CTE hits the engine's recursion cap and
// errors. Only non-terminating programs can tell the difference.
func liftWhileLoops(body *ast.Block, params []ast.Param) {
	counter := 0
	attempted := map[*ast.WhileStmt]bool{}
	for {
		cand := findLiftableWhile(body, params, attempted)
		if cand == nil {
			return
		}
		attempted[cand.while] = true
		counter++
		lifted := liftOneFor(cand.synthFor(), fmt.Sprintf("aggify_while%d", counter))
		if lifted == nil {
			continue // liftOneFor's own conflict check disagreed; skip
		}
		// Splice the cursor-loop block in place of the WHILE.
		out := make([]ast.Stmt, 0, len(cand.block.Stmts)+len(lifted.Stmts)-1)
		out = append(out, cand.block.Stmts[:cand.idx]...)
		out = append(out, lifted.Stmts...)
		out = append(out, cand.block.Stmts[cand.idx+1:]...)
		cand.block.Stmts = out
	}
}

// whileCandidate is one liftable WHILE: the loop, its containing block
// and index, the control variable, its update expression, and the body
// with the update stripped.
type whileCandidate struct {
	while *ast.WhileStmt
	block *ast.Block
	idx   int
	ctrl  string
	post  ast.Expr
	rest  []ast.Stmt // body statements minus the trailing control update
}

// synthFor expresses the candidate as a counted FOR loop seeded with the
// control variable's current value, which liftOneFor knows how to lower.
func (c *whileCandidate) synthFor() *ast.ForStmt {
	return &ast.ForStmt{
		InitVar:  c.ctrl,
		InitExpr: ast.Var(c.ctrl),
		Cond:     c.while.Cond,
		PostVar:  c.ctrl,
		PostExpr: c.post,
		Body:     &ast.Block{Stmts: c.rest},
	}
}

// findLiftableWhile returns the first WHILE in body meeting every lift
// precondition, or nil. The dataflow analysis is rebuilt per call because
// each accepted lift rewrites the AST.
func findLiftableWhile(body *ast.Block, params []ast.Param, attempted map[*ast.WhileStmt]bool) *whileCandidate {
	analysisBody := &ast.Block{}
	for _, p := range params {
		init := p.Default
		if init == nil {
			init = ast.Var(p.Name)
		}
		analysisBody.Stmts = append(analysisBody.Stmts, &ast.DeclareVar{Name: p.Name, Type: p.Type, Init: init})
	}
	analysisBody.Stmts = append(analysisBody.Stmts, body)
	g := analysis.Build(analysisBody)
	a := analysis.Analyze(g)

	var found *whileCandidate
	var visitBlock func(b *ast.Block)
	var visitStmt func(s ast.Stmt)
	visitBlock = func(b *ast.Block) {
		for i, s := range b.Stmts {
			if found != nil {
				return
			}
			if w, ok := s.(*ast.WhileStmt); ok && !attempted[w] {
				if c := matchLiftableWhile(w, b, i, g, a); c != nil {
					found = c
					return
				}
			}
			visitStmt(s)
		}
	}
	visitStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.Block:
			visitBlock(st)
		case *ast.IfStmt:
			visitStmt(st.Then)
			visitStmt(st.Else)
		case *ast.WhileStmt:
			visitStmt(st.Body)
		case *ast.ForStmt:
			visitStmt(st.Body)
		case *ast.TryCatch:
			visitStmt(st.Try)
			visitStmt(st.Catch)
		}
	}
	visitBlock(body)
	return found
}

// matchLiftableWhile checks one WHILE against the lift preconditions.
func matchLiftableWhile(w *ast.WhileStmt, b *ast.Block, idx int, g *analysis.CFG, a *analysis.Analysis) *whileCandidate {
	if refsFetchStatus(w.Cond) || !exprPureScalar(w.Cond) {
		return nil
	}
	condVars := ast.VarsInExpr(w.Cond)
	if len(condVars) == 0 {
		return nil
	}
	stmts := bodyStmts(w.Body)
	if len(stmts) == 0 {
		return nil
	}
	// The last statement must be the single control update: SET @ctrl = post
	// with @ctrl read by the condition.
	set, ok := stmts[len(stmts)-1].(*ast.SetStmt)
	if !ok || len(set.Targets) != 1 || !condVars[set.Targets[0]] {
		return nil
	}
	ctrl, post := set.Targets[0], set.Value
	if !exprPureScalar(post) {
		return nil
	}
	// Nothing else in the body may assign any variable the condition or
	// the update reads (including the control variable itself).
	controlled := map[string]bool{}
	for v := range condVars {
		controlled[v] = true
	}
	for v := range ast.VarsInExpr(post) {
		controlled[v] = true
	}
	conflict := false
	ast.WalkStmt(w.Body, func(s ast.Stmt) bool {
		if s == ast.Stmt(set) {
			return true
		}
		defs, _ := analysis.StmtDefsUses(s, nil)
		for _, d := range defs {
			if controlled[d] {
				conflict = true
			}
		}
		return !conflict
	})
	if conflict || loopUsesBreakOrContinue(w.Body) {
		return nil
	}
	// The control variable must be dead on the loop's normal exit: check
	// liveness at every condition-node successor outside the loop.
	condNode := g.CondNode[w]
	if condNode == nil {
		return nil
	}
	inLoop := a.NodesOf(w)
	for _, succ := range condNode.Succs {
		if !inLoop[succ] && a.LiveAtEntry(succ, ctrl) {
			return nil
		}
	}
	return &whileCandidate{
		while: w, block: b, idx: idx, ctrl: ctrl, post: post,
		rest: append([]ast.Stmt{}, stmts[:len(stmts)-1]...),
	}
}

// bodyStmts views a loop body as a statement list, wrapping single
// statements.
func bodyStmts(s ast.Stmt) []ast.Stmt {
	if b, ok := s.(*ast.Block); ok {
		return b.Stmts
	}
	if s == nil {
		return nil
	}
	return []ast.Stmt{s}
}

// exprPureScalar reports whether e is a pure scalar expression: no
// subqueries, no IN (SELECT ...), no function calls (a UDF may read or
// write database state).
func exprPureScalar(e ast.Expr) bool {
	pure := true
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch q := x.(type) {
		case *ast.Subquery, *ast.FuncCall:
			pure = false
		case *ast.InExpr:
			if q.Query != nil {
				pure = false
			}
		}
		return pure
	})
	return pure
}

// loopUsesBreakOrContinue reports whether the body contains BREAK or
// CONTINUE bound to the loop itself (not to a loop nested inside).
func loopUsesBreakOrContinue(body ast.Stmt) bool {
	found := false
	var walk func(s ast.Stmt, depth int)
	walk = func(s ast.Stmt, depth int) {
		switch st := s.(type) {
		case nil:
		case *ast.Block:
			for _, inner := range st.Stmts {
				walk(inner, depth)
			}
		case *ast.IfStmt:
			walk(st.Then, depth)
			walk(st.Else, depth)
		case *ast.WhileStmt:
			walk(st.Body, depth+1)
		case *ast.ForStmt:
			walk(st.Body, depth+1)
		case *ast.TryCatch:
			walk(st.Try, depth)
			walk(st.Catch, depth)
		case *ast.BreakStmt, *ast.ContinueStmt:
			if depth == 0 {
				found = true
			}
		}
	}
	walk(body, 0)
	return found
}
