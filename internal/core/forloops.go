package core

import (
	"fmt"

	"aggify/internal/analysis"
	"aggify/internal/ast"
)

// liftForLoops implements the §8.1 enhancement: counted FOR loops whose
// iteration space is expressible as a relation are rewritten into cursor
// loops over a recursive CTE, which the main transformation then aggifies.
//
//	FOR (@i = init; cond; @i = post) body
//
// becomes
//
//	DECLARE aggify_forN CURSOR FOR
//	  WITH aggify_iter(val) AS (
//	    SELECT init AS val WHERE cond[@i := init]
//	    UNION ALL
//	    SELECT post[@i := val] AS val FROM aggify_iter
//	    WHERE cond[@i := post[@i := val]])
//	  SELECT val FROM aggify_iter;
//	OPEN aggify_forN;
//	FETCH NEXT FROM aggify_forN INTO @i;
//	WHILE @@fetch_status = 0 BEGIN body; FETCH ... END
//	CLOSE aggify_forN; DEALLOCATE aggify_forN;
//
// A FOR loop whose body assigns the loop variable or any variable used by
// the condition or increment is left untouched (its iteration space is not
// statically a relation).
func liftForLoops(body *ast.Block) {
	counter := 0
	var walk func(s ast.Stmt)
	rewriteList := func(stmts []ast.Stmt) []ast.Stmt {
		var out []ast.Stmt
		for _, s := range stmts {
			if f, ok := s.(*ast.ForStmt); ok {
				if lifted := liftOneFor(f, fmt.Sprintf("aggify_for%d", counter+1)); lifted != nil {
					counter++
					walk(lifted)
					out = append(out, lifted.Stmts...)
					continue
				}
			}
			walk(s)
			out = append(out, s)
		}
		return out
	}
	walk = func(s ast.Stmt) {
		switch st := s.(type) {
		case nil:
		case *ast.Block:
			st.Stmts = rewriteList(st.Stmts)
		case *ast.IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *ast.WhileStmt:
			walk(st.Body)
		case *ast.ForStmt:
			walk(st.Body)
		case *ast.TryCatch:
			walk(st.Try)
			walk(st.Catch)
		}
	}
	walk(body)
}

// liftOneFor converts one FOR loop into a cursor loop over a recursive
// CTE named cursor; nil when not liftable. The WHILE lift reuses this
// with a synthetic FOR whose init expression is the control variable
// itself (its current value at loop entry).
func liftOneFor(f *ast.ForStmt, cursor string) *ast.Block {
	if f.InitVar != f.PostVar {
		return nil
	}
	loopVar := f.InitVar
	// The body must not redefine the loop variable or anything the
	// condition/increment reads.
	controlled := map[string]bool{loopVar: true}
	for v := range ast.VarsInExpr(f.Cond) {
		controlled[v] = true
	}
	for v := range ast.VarsInExpr(f.PostExpr) {
		controlled[v] = true
	}
	conflict := false
	ast.WalkStmt(f.Body, func(s ast.Stmt) bool {
		defs, _ := analysis.StmtDefsUses(s, nil)
		for _, d := range defs {
			if controlled[d] {
				conflict = true
			}
		}
		return true
	})
	if conflict {
		return nil
	}

	valCol := ast.Col("val")
	subst := func(e ast.Expr, repl ast.Expr) ast.Expr {
		return mapVarRefs(ast.CloneExpr(e), func(v *ast.VarRef) ast.Expr {
			if v.Name == loopVar {
				return ast.CloneExpr(repl)
			}
			return v
		})
	}
	seed := &ast.Select{
		Items: []ast.SelectItem{{Expr: ast.CloneExpr(f.InitExpr), Alias: "val"}},
		Where: subst(f.Cond, f.InitExpr),
	}
	nextVal := subst(f.PostExpr, valCol)
	recursive := &ast.Select{
		Items: []ast.SelectItem{{Expr: ast.CloneExpr(nextVal), Alias: "val"}},
		From:  []ast.TableExpr{&ast.TableRef{Name: "aggify_iter"}},
		Where: subst(f.Cond, nextVal),
	}
	seed.Union = recursive
	query := &ast.Select{
		With:  []ast.CTE{{Name: "aggify_iter", Cols: []string{"val"}, Query: seed}},
		Items: []ast.SelectItem{{Expr: valCol}},
		From:  []ast.TableExpr{&ast.TableRef{Name: "aggify_iter"}},
	}

	bodyBlock, ok := f.Body.(*ast.Block)
	if !ok {
		bodyBlock = &ast.Block{Stmts: []ast.Stmt{f.Body}}
	}
	loopBody := &ast.Block{Stmts: append(append([]ast.Stmt{}, bodyBlock.Stmts...),
		&ast.FetchStmt{Cursor: cursor, Into: []string{loopVar}})}

	return &ast.Block{Stmts: []ast.Stmt{
		&ast.DeclareCursor{Name: cursor, Query: query},
		&ast.OpenCursor{Name: cursor},
		&ast.FetchStmt{Cursor: cursor, Into: []string{loopVar}},
		&ast.WhileStmt{
			Cond: ast.Eq(ast.Var(ast.FetchStatusVar), ast.IntLit(0)),
			Body: loopBody,
		},
		&ast.CloseCursor{Name: cursor},
		&ast.DeallocateCursor{Name: cursor},
	}}
}

// mapVarRefs rewrites variable references through fn.
func mapVarRefs(e ast.Expr, fn func(*ast.VarRef) ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.VarRef:
		return fn(x)
	case *ast.BinExpr:
		return &ast.BinExpr{Op: x.Op, L: mapVarRefs(x.L, fn), R: mapVarRefs(x.R, fn)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, E: mapVarRefs(x.E, fn)}
	case *ast.IsNullExpr:
		return &ast.IsNullExpr{E: mapVarRefs(x.E, fn), Negate: x.Negate}
	case *ast.CaseExpr:
		out := &ast.CaseExpr{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{Cond: mapVarRefs(w.Cond, fn), Then: mapVarRefs(w.Then, fn)})
		}
		if x.Else != nil {
			out.Else = mapVarRefs(x.Else, fn)
		}
		return out
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, mapVarRefs(a, fn))
		}
		return out
	case *ast.BetweenExpr:
		return &ast.BetweenExpr{E: mapVarRefs(x.E, fn), Lo: mapVarRefs(x.Lo, fn), Hi: mapVarRefs(x.Hi, fn), Negate: x.Negate}
	case *ast.InExpr:
		out := &ast.InExpr{E: mapVarRefs(x.E, fn), Negate: x.Negate, Query: x.Query}
		for _, it := range x.List {
			out.List = append(out.List, mapVarRefs(it, fn))
		}
		return out
	default:
		return e
	}
}
