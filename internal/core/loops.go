// Package core implements Aggify (paper §4–§8): it detects cursor loops in
// procedural code, checks the §4.2 preconditions, constructs an equivalent
// custom aggregate (§5, Figure 4's template), rewrites the cursor query to
// invoke it (§6, Eqs. 5–6), handles nested loops innermost-first (§6.3.1),
// lifts counted FOR loops through recursive CTEs (§8.1), and cleans up dead
// declarations (§6.2).
package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"aggify/internal/ast"
)

// CursorLoop describes one detected cursor loop: the statements of the
// DECLARE/OPEN/FETCH/WHILE/CLOSE/DEALLOCATE pattern within one block.
type CursorLoop struct {
	Cursor string
	// Block is the statement list containing the pattern.
	Block *ast.Block
	Decl  *ast.DeclareCursor
	Open  *ast.OpenCursor
	// Prime is the priming FETCH before the loop; Inner the one at the end
	// of the loop body.
	Prime   *ast.FetchStmt
	While   *ast.WhileStmt
	Inner   *ast.FetchStmt
	Close   *ast.CloseCursor
	Dealloc *ast.DeallocateCursor
}

// FetchVars returns the FETCH INTO variable list.
func (l *CursorLoop) FetchVars() []string { return l.Prime.Into }

// refsFetchStatus reports whether e references @@fetch_status.
func refsFetchStatus(e ast.Expr) bool {
	return ast.VarsInExpr(e)[ast.FetchStatusVar]
}

// FindCursorLoops returns all cursor loops in the body, outermost loops
// before the loops nested inside them. Loops that do not match the
// canonical pattern (e.g. a WHILE over @@fetch_status without a matching
// DECLARE/OPEN/FETCH in the same block) are not returned; they surface in
// the applicability scan as unrecognized.
func FindCursorLoops(body ast.Stmt) []*CursorLoop {
	var out []*CursorLoop
	var visitBlock func(b *ast.Block)
	var visitStmt func(s ast.Stmt)
	visitBlock = func(b *ast.Block) {
		for i, s := range b.Stmts {
			if w, ok := s.(*ast.WhileStmt); ok && refsFetchStatus(w.Cond) {
				if loop := matchLoop(b, i, w); loop != nil {
					out = append(out, loop)
				}
			}
			visitStmt(s)
		}
	}
	visitStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.Block:
			visitBlock(st)
		case *ast.IfStmt:
			visitStmt(st.Then)
			visitStmt(st.Else)
		case *ast.WhileStmt:
			visitStmt(st.Body)
		case *ast.ForStmt:
			visitStmt(st.Body)
		case *ast.TryCatch:
			visitStmt(st.Try)
			visitStmt(st.Catch)
		}
	}
	visitStmt(body)
	return out
}

// FindUnmatchedCursorWhiles returns WHILE loops over @@fetch_status that
// do NOT match the canonical cursor-loop pattern: the rewrite never even
// attempts these, which is a different verdict than "attempted and
// rejected" and is reported as such by the profiler (code
// unmatched_pattern).
func FindUnmatchedCursorWhiles(body ast.Stmt) []*ast.WhileStmt {
	matched := map[*ast.WhileStmt]bool{}
	for _, l := range FindCursorLoops(body) {
		matched[l.While] = true
	}
	var out []*ast.WhileStmt
	ast.WalkStmt(body, func(s ast.Stmt) bool {
		if w, ok := s.(*ast.WhileStmt); ok && refsFetchStatus(w.Cond) && !matched[w] {
			out = append(out, w)
		}
		return true
	})
	return out
}

// matchLoop matches the canonical cursor-loop pattern around the WHILE at
// index i of block b.
func matchLoop(b *ast.Block, i int, w *ast.WhileStmt) *CursorLoop {
	// The priming FETCH is the nearest FETCH before the WHILE.
	var prime *ast.FetchStmt
	for j := i - 1; j >= 0; j-- {
		if f, ok := b.Stmts[j].(*ast.FetchStmt); ok {
			prime = f
			break
		}
	}
	if prime == nil {
		return nil
	}
	loop := &CursorLoop{Cursor: prime.Cursor, Block: b, Prime: prime, While: w}
	for j := i - 1; j >= 0; j-- {
		switch st := b.Stmts[j].(type) {
		case *ast.DeclareCursor:
			if st.Name == loop.Cursor && loop.Decl == nil {
				loop.Decl = st
			}
		case *ast.OpenCursor:
			if st.Name == loop.Cursor && loop.Open == nil {
				loop.Open = st
			}
		}
	}
	for j := i + 1; j < len(b.Stmts); j++ {
		switch st := b.Stmts[j].(type) {
		case *ast.CloseCursor:
			if st.Name == loop.Cursor && loop.Close == nil {
				loop.Close = st
			}
		case *ast.DeallocateCursor:
			if st.Name == loop.Cursor && loop.Dealloc == nil {
				loop.Dealloc = st
			}
		}
	}
	if loop.Decl == nil || loop.Open == nil || loop.Close == nil || loop.Dealloc == nil {
		return nil
	}
	// The loop body must end with exactly one FETCH of this cursor.
	bodyBlock, ok := w.Body.(*ast.Block)
	if !ok || len(bodyBlock.Stmts) == 0 {
		return nil
	}
	var fetches []*ast.FetchStmt
	ast.WalkStmt(w.Body, func(s ast.Stmt) bool {
		if f, ok := s.(*ast.FetchStmt); ok && f.Cursor == loop.Cursor {
			fetches = append(fetches, f)
		}
		return true
	})
	if len(fetches) != 1 {
		return nil
	}
	last, ok := bodyBlock.Stmts[len(bodyBlock.Stmts)-1].(*ast.FetchStmt)
	if !ok || last != fetches[0] {
		return nil
	}
	loop.Inner = last
	// The priming and inner FETCH lists must agree.
	if len(prime.Into) != len(last.Into) {
		return nil
	}
	for k := range prime.Into {
		if prime.Into[k] != last.Into[k] {
			return nil
		}
	}
	// The fetch arity must match the cursor query projection (star
	// projections are not matchable).
	for _, it := range loop.Decl.Query.Items {
		if it.Star {
			return nil
		}
	}
	if len(loop.Decl.Query.Items) != len(prime.Into) {
		return nil
	}
	return loop
}

// ContainsCursorOps reports whether the statement subtree contains cursor
// operations for any cursor other than skip (used to order nested-loop
// transformation innermost-first).
func ContainsCursorOps(s ast.Stmt, skip string) bool {
	found := false
	ast.WalkStmt(s, func(st ast.Stmt) bool {
		switch x := st.(type) {
		case *ast.DeclareCursor:
			if x.Name != skip {
				found = true
			}
		case *ast.FetchStmt:
			if x.Cursor != skip {
				found = true
			}
		}
		return true
	})
	return found
}

// ReasonCode is a stable identifier for one applicability-rejection
// category. The profiler, the /metrics counters, and the applicability
// scan all key on these codes, so the same category can never drift into
// three different strings again. Codes are append-only: tools compare
// them across versions.
type ReasonCode string

const (
	// ReasonPersistentDML: the loop writes a persistent table (§4.2's "no
	// modifications of persistent database state").
	ReasonPersistentDML ReasonCode = "persistent_dml"
	// ReasonResultSet: a standalone SELECT returns rows to the client.
	ReasonResultSet ReasonCode = "result_set"
	// ReasonProcCall: EXEC of a procedure that may modify state.
	ReasonProcCall ReasonCode = "proc_call"
	// ReasonModuleReturn: RETURN exits the enclosing module from inside Δ.
	ReasonModuleReturn ReasonCode = "module_return"
	// ReasonDDL: CREATE TABLE/INDEX/FUNCTION/... inside the loop.
	ReasonDDL ReasonCode = "ddl"
	// ReasonTxnControl: BEGIN/COMMIT/ROLLBACK inside the loop.
	ReasonTxnControl ReasonCode = "txn_control"
	// ReasonReopenCursor: the loop re-opens its own cursor.
	ReasonReopenCursor ReasonCode = "reopen_cursor"
	// ReasonOuterTableVar: the loop reads a table variable declared outside.
	ReasonOuterTableVar ReasonCode = "outer_table_var"
	// ReasonNoDeclaration: a referenced variable has no visible declaration.
	ReasonNoDeclaration ReasonCode = "no_declaration"
	// ReasonUnmatchedPattern: a WHILE over @@fetch_status that does not
	// match the canonical DECLARE/OPEN/FETCH pattern — the rewrite was
	// never attempted, as opposed to attempted and rejected.
	ReasonUnmatchedPattern ReasonCode = "unmatched_pattern"
)

// AllReasonCodes lists every code, in display order, so counters can be
// registered eagerly (a /metrics series exists even before its first
// rejection).
func AllReasonCodes() []ReasonCode {
	return []ReasonCode{
		ReasonPersistentDML, ReasonResultSet, ReasonProcCall,
		ReasonModuleReturn, ReasonDDL, ReasonTxnControl,
		ReasonReopenCursor, ReasonOuterTableVar, ReasonNoDeclaration,
		ReasonUnmatchedPattern,
	}
}

// reasonCounters counts rejections per code, process-wide, incremented
// when a NotAggifiableError is constructed (i.e. each time an attempted
// rewrite is rejected).
var reasonCounters sync.Map // ReasonCode -> *int64

func countReason(code ReasonCode) {
	c, _ := reasonCounters.LoadOrStore(code, new(int64))
	atomic.AddInt64(c.(*int64), 1)
}

// CountUnmatched records a never-attempted loop (profiler/applicability
// scans call this for WHILE-over-@@fetch_status loops outside the
// canonical pattern; there is no error object to construct for those).
func CountUnmatched() { countReason(ReasonUnmatchedPattern) }

// ReasonCounts snapshots the per-code rejection counters. Every known
// code is present, zero-valued when never hit.
func ReasonCounts() map[ReasonCode]int64 {
	out := map[ReasonCode]int64{}
	for _, code := range AllReasonCodes() {
		out[code] = 0
	}
	reasonCounters.Range(func(k, v any) bool {
		out[k.(ReasonCode)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	return out
}

// NotAggifiableError explains why a loop cannot be transformed.
type NotAggifiableError struct {
	Code   ReasonCode
	Reason string
}

func (e *NotAggifiableError) Error() string { return "aggify: " + e.Reason }

func notAggifiable(code ReasonCode, format string, args ...any) error {
	countReason(code)
	return &NotAggifiableError{Code: code, Reason: fmt.Sprintf(format, args...)}
}

// CheckApplicability enforces the §4.2 preconditions on a loop body Δ:
// no modifications of persistent database state, no statements that cannot
// appear inside a custom aggregate, and (an engine-specific restriction) no
// references to table variables declared outside the loop. outerTableVars
// lists table variables declared outside Δ.
func CheckApplicability(loop *CursorLoop, outerTableVars map[string]bool) error {
	var err error
	localTables := map[string]bool{}
	ast.WalkStmt(loop.While.Body, func(s ast.Stmt) bool {
		if err != nil {
			return false
		}
		switch st := s.(type) {
		case *ast.DeclareTable:
			localTables[st.Name] = true
		case *ast.InsertStmt:
			err = checkDMLTarget(st.Table, localTables)
		case *ast.UpdateStmt:
			err = checkDMLTarget(st.Table, localTables)
		case *ast.DeleteStmt:
			err = checkDMLTarget(st.Table, localTables)
		case *ast.QueryStmt:
			err = notAggifiable(ReasonResultSet, "loop returns result sets to the client (standalone SELECT)")
		case *ast.ExecStmt:
			err = notAggifiable(ReasonProcCall, "loop calls procedure %s, which may modify database state", st.Proc)
		case *ast.ReturnStmt:
			err = notAggifiable(ReasonModuleReturn, "loop contains RETURN from the enclosing module")
		case *ast.CreateTable, *ast.CreateIndex, *ast.CreateFunction, *ast.CreateProcedure, *ast.CreateAggregate:
			err = notAggifiable(ReasonDDL, "loop contains DDL")
		case *ast.TxnStmt:
			err = notAggifiable(ReasonTxnControl, "loop contains transaction control (%s)", st.Op)
		case *ast.OpenCursor:
			if st.Name == loop.Cursor {
				err = notAggifiable(ReasonReopenCursor, "loop re-opens its own cursor")
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	// Table-variable references must be local to the loop (session temp
	// tables #t are fine: they are shared state the aggregate can reach).
	ast.WalkStmt(loop.While.Body, func(s ast.Stmt) bool {
		if err != nil {
			return false
		}
		for name := range tableVarRefs(s) {
			if !localTables[name] && outerTableVars[name] {
				err = notAggifiable(ReasonOuterTableVar, "loop references table variable %s declared outside the loop", name)
			}
		}
		return true
	})
	return err
}

func checkDMLTarget(table string, localTables map[string]bool) error {
	if strings.HasPrefix(table, "#") {
		return nil // session temp table
	}
	if strings.HasPrefix(table, "@") {
		return nil // table variable (locality checked separately)
	}
	return notAggifiable(ReasonPersistentDML, "loop modifies persistent table %s", table)
}

// tableVarRefs collects @table references in the statement's own queries
// and DML targets (not descending into nested statements).
func tableVarRefs(s ast.Stmt) map[string]bool {
	out := map[string]bool{}
	addQuery := func(q *ast.Select) {
		if q == nil {
			return
		}
		var visit func(q *ast.Select)
		visit = func(q *ast.Select) {
			for branch := q; branch != nil; branch = branch.Union {
				for _, te := range branch.From {
					collectTableVarRefs(te, out, visit)
				}
			}
			for _, cte := range q.With {
				visit(cte.Query)
			}
		}
		visit(q)
		// Subqueries in expressions.
		ast.WalkSelectExprs(q, func(e ast.Expr) bool {
			if sq, ok := e.(*ast.Subquery); ok {
				visit(sq.Query)
			}
			if in, ok := e.(*ast.InExpr); ok && in.Query != nil {
				visit(in.Query)
			}
			return true
		})
	}
	switch st := s.(type) {
	case *ast.InsertStmt:
		if strings.HasPrefix(st.Table, "@") {
			out[st.Table] = true
		}
		addQuery(st.Query)
	case *ast.UpdateStmt:
		if strings.HasPrefix(st.Table, "@") {
			out[st.Table] = true
		}
	case *ast.DeleteStmt:
		if strings.HasPrefix(st.Table, "@") {
			out[st.Table] = true
		}
	case *ast.DeclareCursor:
		addQuery(st.Query)
	case *ast.QueryStmt:
		addQuery(st.Query)
	case *ast.SetStmt:
		addExprQueries(st.Value, addQuery)
	case *ast.IfStmt:
		addExprQueries(st.Cond, addQuery)
	case *ast.WhileStmt:
		addExprQueries(st.Cond, addQuery)
	case *ast.DeclareVar:
		addExprQueries(st.Init, addQuery)
	case *ast.ReturnStmt:
		addExprQueries(st.Value, addQuery)
	case *ast.PrintStmt:
		addExprQueries(st.E, addQuery)
	}
	return out
}

func addExprQueries(e ast.Expr, addQuery func(*ast.Select)) {
	if e == nil {
		return
	}
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch sq := x.(type) {
		case *ast.Subquery:
			addQuery(sq.Query)
		case *ast.InExpr:
			if sq.Query != nil {
				addQuery(sq.Query)
			}
		}
		return true
	})
}

func collectTableVarRefs(te ast.TableExpr, out map[string]bool, visit func(*ast.Select)) {
	switch t := te.(type) {
	case *ast.TableRef:
		if strings.HasPrefix(t.Name, "@") {
			out[t.Name] = true
		}
	case *ast.SubqueryRef:
		visit(t.Query)
	case *ast.Join:
		collectTableVarRefs(t.L, out, visit)
		collectTableVarRefs(t.R, out, visit)
	}
}

// OuterTableVars collects table variables declared in body but outside Δ.
func OuterTableVars(body ast.Stmt, delta ast.Stmt) map[string]bool {
	inDelta := map[ast.Stmt]bool{}
	ast.WalkStmt(delta, func(s ast.Stmt) bool {
		inDelta[s] = true
		return true
	})
	out := map[string]bool{}
	ast.WalkStmt(body, func(s ast.Stmt) bool {
		if dt, ok := s.(*ast.DeclareTable); ok && !inDelta[s] {
			out[dt.Name] = true
		}
		return true
	})
	return out
}
