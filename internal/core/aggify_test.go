package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

const fig1DB = `
create table part (p_partkey int, p_name varchar(55));
create index pk_part on part(p_partkey);
create table partsupp (ps_partkey int, ps_suppkey int, ps_supplycost decimal(15,2));
create index idx_ps on partsupp(ps_partkey);
create table supplier (s_suppkey int, s_name char(25));
create index pk_supp on supplier(s_suppkey);
insert into part values (1, 'widget'), (2, 'gadget'), (3, 'gizmo'), (4, 'lonely');
insert into supplier values (10, 'acme'), (11, 'bolts inc'), (12, 'cheapco');
insert into partsupp values
 (1, 10, 5.0), (1, 11, 3.5), (1, 12, 9.0),
 (2, 10, 7.0), (2, 12, 2.0),
 (3, 11, 8.0);
GO
create function getLowerBound(@pkey int) returns int as
begin
  return 3;
end
`

const fig1UDF = `
create function minCostSupp(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = getLowerBound(@pkey);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`

func parseFunc(t *testing.T, src string) *ast.CreateFunction {
	t.Helper()
	stmts := parser.MustParse(src)
	for _, s := range stmts {
		if f, ok := s.(*ast.CreateFunction); ok {
			return f
		}
	}
	t.Fatal("no function in source")
	return nil
}

func newDB(t *testing.T, setup string) *engine.Session {
	t.Helper()
	eng := engine.New()
	interp.Install(eng)
	sess := eng.NewSession()
	if setup != "" {
		if _, err := interp.RunScript(sess, parser.MustParse(setup)); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	return sess
}

// registerTransformed transforms fn, registers the generated aggregates and
// the rewritten function under the name <fn>_aggified, and returns the
// result.
func registerTransformed(t *testing.T, sess *engine.Session, fn *ast.CreateFunction, opts core.Options) *core.Result {
	t.Helper()
	rewritten, res, err := core.TransformFunction(fn, opts)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	for _, lr := range res.Loops {
		if err := sess.Eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
			t.Fatalf("register aggregate: %v", err)
		}
	}
	rewritten.Name = rewritten.Name + "_aggified"
	if err := sess.Eng.RegisterFunction(rewritten); err != nil {
		t.Fatalf("register function: %v", err)
	}
	return res
}

// assertEquivalent calls fn and fn_aggified with each argument set and
// requires identical results.
func assertEquivalent(t *testing.T, sess *engine.Session, fn string, argSets [][]sqltypes.Value) {
	t.Helper()
	for _, args := range argSets {
		orig, err := interp.CallFunctionByName(sess, fn, args...)
		if err != nil {
			t.Fatalf("%s(%v): %v", fn, args, err)
		}
		agg, err := interp.CallFunctionByName(sess, fn+"_aggified", args...)
		if err != nil {
			t.Fatalf("%s_aggified(%v): %v", fn, args, err)
		}
		if !sqltypes.GroupEqual(orig, agg) {
			t.Fatalf("%s(%v): original %v vs aggified %v", fn, args, orig, agg)
		}
	}
}

func TestFindCursorLoopsFig1(t *testing.T) {
	fn := parseFunc(t, fig1UDF)
	loops := core.FindCursorLoops(fn.Body)
	if len(loops) != 1 {
		t.Fatalf("found %d loops", len(loops))
	}
	l := loops[0]
	if l.Cursor != "c1" || l.Decl == nil || l.Open == nil || l.Close == nil || l.Dealloc == nil {
		t.Fatalf("incomplete pattern: %+v", l)
	}
	if got := l.FetchVars(); len(got) != 2 || got[0] != "@pcost" || got[1] != "@sname" {
		t.Fatalf("fetch vars = %v", got)
	}
}

func TestFig1VariableSets(t *testing.T) {
	// The paper's §5 illustrations, exactly.
	fn := parseFunc(t, fig1UDF)
	_, res, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %d", len(res.Loops))
	}
	lr := res.Loops[0]
	wantSet := func(name string, got []string, want ...string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
		gotSet := map[string]bool{}
		for _, g := range got {
			gotSet[g] = true
		}
		for _, w := range want {
			if !gotSet[w] {
				t.Fatalf("%s = %v, want %v", name, got, want)
			}
		}
	}
	wantSet("V_Δ", lr.VDelta, "@pcost", "@mincost", "@lb", "@suppname", "@sname")
	wantSet("V_fetch", lr.VFetch, "@pcost", "@sname")
	wantSet("V_local", lr.VLocal) // empty
	wantSet("V_F", lr.Fields, "@mincost", "@lb", "@suppname")
	wantSet("P_accum", lr.Params, "@pcost", "@sname", "@mincost", "@lb")
	wantSet("V_init", lr.VInit, "@mincost", "@lb")
	wantSet("V_term", lr.VTerm, "@suppname")
	if lr.OrderSensitive {
		t.Fatal("no ORDER BY, aggregate must not be order-sensitive")
	}
	// Aggregate shape: 4 params, fields + isInitialized flag, CHAR(25).
	agg := lr.Aggregate
	if len(agg.Params) != 4 {
		t.Fatalf("agg params = %v", agg.Params)
	}
	if len(agg.Fields) != 4 { // 3 fields + init flag
		t.Fatalf("agg fields = %v", agg.Fields)
	}
	if agg.Returns.String() != "CHAR(25)" {
		t.Fatalf("agg returns %v", agg.Returns)
	}
}

func TestFig1RewrittenShape(t *testing.T) {
	fn := parseFunc(t, fig1UDF)
	rewritten, _, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := ast.Format(rewritten)
	// The loop is gone; a single SET with the aggregate invocation remains.
	for _, gone := range []string{"CURSOR", "FETCH", "WHILE", "OPEN", "CLOSE", "DEALLOCATE"} {
		if strings.Contains(strings.ToUpper(src), gone) {
			t.Fatalf("rewritten function still contains %s:\n%s", gone, src)
		}
	}
	if !strings.Contains(src, "mincostsupp_c1_agg1(") {
		t.Fatalf("missing aggregate invocation:\n%s", src)
	}
	// Dead declarations for @pCost/@sName must be removed (§6.2).
	if strings.Contains(src, "@pcost") || strings.Contains(src, "@sname") {
		t.Fatalf("dead declarations not removed:\n%s", src)
	}
	// The rewritten source must re-parse.
	if _, err := parser.Parse(src); err != nil {
		t.Fatalf("rewritten source does not re-parse: %v\n%s", err, src)
	}
	// And the generated aggregate too.
	_, res, _ := core.TransformFunction(fn, core.Options{})
	aggSrc := ast.Format(res.Loops[0].Aggregate)
	if _, err := parser.Parse(aggSrc); err != nil {
		t.Fatalf("generated aggregate does not re-parse: %v\n%s", err, aggSrc)
	}
}

func TestFig1EndToEnd(t *testing.T) {
	sess := newDB(t, fig1DB)
	fn := parseFunc(t, fig1UDF)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	registerTransformed(t, sess, fn, core.Options{})
	var argSets [][]sqltypes.Value
	for pkey := int64(1); pkey <= 4; pkey++ {
		argSets = append(argSets, []sqltypes.Value{sqltypes.NewInt(pkey)})
		argSets = append(argSets, []sqltypes.Value{sqltypes.NewInt(pkey), sqltypes.NewInt(4)})
		argSets = append(argSets, []sqltypes.Value{sqltypes.NewInt(pkey), sqltypes.NewInt(0)})
	}
	assertEquivalent(t, sess, "mincostsupp", argSets)
}

func TestOrderByLoopIsOrderEnforced(t *testing.T) {
	// The paper's Figure 2 pattern: cumulative ROI over ordered months.
	sess := newDB(t, `
create table monthly_roi (investor_id int, m int, roi float);
create index idx_inv on monthly_roi(investor_id);
insert into monthly_roi values
 (1, 1, 0.10), (1, 2, 0.0 - 0.05), (1, 3, 0.20),
 (2, 1, 0.01), (2, 2, 0.02);
`)
	fn := parseFunc(t, `
create function cumulativeROI(@id int) returns float as
begin
  declare @monthlyROI float;
  declare @cum float = 1.0;
  declare c cursor for
    select roi from monthly_roi where investor_id = @id order by m;
  open c;
  fetch next from c into @monthlyROI;
  while @@fetch_status = 0
  begin
    set @cum = @cum * (@monthlyROI + 1);
    fetch next from c into @monthlyROI;
  end
  close c;
  deallocate c;
  set @cum = @cum - 1;
  return @cum;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if !res.Loops[0].OrderSensitive {
		t.Fatal("ORDER BY loop must yield an order-sensitive aggregate (Eq. 6)")
	}
	// The rewritten query must carry the enforcement marker.
	found := false
	rewritten, _ := sess.Eng.Function("cumulativeroi_aggified")
	ast.WalkStmt(rewritten.Body, func(s ast.Stmt) bool {
		if set, ok := s.(*ast.SetStmt); ok {
			if sq, ok := set.Value.(*ast.Subquery); ok && sq.Query.OrderEnforced {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Fatal("rewritten query lacks OPTION (ORDER ENFORCED)")
	}
	assertEquivalent(t, sess, "cumulativeroi", [][]sqltypes.Value{
		{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}, {sqltypes.NewInt(99)},
	})
	// Per the paper's Eq. 4/§5.2: V_init = {@cum}.
	if len(res.Loops[0].VInit) != 1 || res.Loops[0].VInit[0] != "@cum" {
		t.Fatalf("V_init = %v", res.Loops[0].VInit)
	}
}

func TestBreakContinueLoop(t *testing.T) {
	sess := newDB(t, `
create table nums (n int, tag varchar(5));
insert into nums values (1,'a'), (2,'b'), (3,'c'), (4,'d'), (5,'e'), (6,'f');
`)
	fn := parseFunc(t, `
create function sumUntil(@stop int) returns int as
begin
  declare @n int;
  declare @tag varchar(5);
  declare @s int = 0;
  declare c cursor for select n, tag from nums order by n;
  open c;
  fetch next from c into @n, @tag;
  while @@fetch_status = 0
  begin
    if @n = @stop break;
    if @n % 2 = 0
    begin
      fetch next from c into @n, @tag;
      continue;
    end
    set @s = @s + @n;
    fetch next from c into @n, @tag;
  end
  close c;
  deallocate c;
  return @s;
end`)
	// This body has a mid-loop FETCH (before CONTINUE) — the canonical
	// pattern requires a single trailing FETCH, so this loop is skipped.
	_, res, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 0 {
		t.Fatal("loop with mid-body FETCH must not match the pattern")
	}

	// The equivalent single-fetch formulation transforms and agrees.
	fn2 := parseFunc(t, `
create function sumUntil2(@stop int) returns int as
begin
  declare @n int;
  declare @tag varchar(5);
  declare @s int = 0;
  declare c cursor for select n, tag from nums order by n;
  open c;
  fetch next from c into @n, @tag;
  while @@fetch_status = 0
  begin
    if @n <> @stop and @n % 2 = 1
      set @s = @s + @n;
    if @n = @stop break;
    fetch next from c into @n, @tag;
  end
  close c;
  deallocate c;
  return @s;
end`)
	if err := sess.Eng.RegisterFunction(fn2); err != nil {
		t.Fatal(err)
	}
	res2 := registerTransformed(t, sess, fn2, core.Options{})
	if len(res2.Loops) != 1 {
		t.Fatalf("loops = %d, skipped = %v", len(res2.Loops), res2.Skipped)
	}
	assertEquivalent(t, sess, "sumuntil2", [][]sqltypes.Value{
		{sqltypes.NewInt(3)}, {sqltypes.NewInt(5)}, {sqltypes.NewInt(100)}, {sqltypes.NewInt(1)},
	})
}

func TestNestedLoopsTransformInnermostFirst(t *testing.T) {
	sess := newDB(t, fig1DB)
	fn := parseFunc(t, `
create function totalCost() returns float as
begin
  declare @pk int;
  declare @total float = 0;
  declare @cost float;
  declare outerc cursor for select p_partkey from part;
  open outerc;
  fetch next from outerc into @pk;
  while @@fetch_status = 0
  begin
    declare innerc cursor for select ps_supplycost from partsupp where ps_partkey = @pk;
    open innerc;
    fetch next from innerc into @cost;
    while @@fetch_status = 0
    begin
      set @total = @total + @cost;
      fetch next from innerc into @cost;
    end
    close innerc;
    deallocate innerc;
    fetch next from outerc into @pk;
  end
  close outerc;
  deallocate outerc;
  return @total;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if len(res.Loops) != 2 {
		t.Fatalf("expected 2 transformed loops (inner first), got %d (skipped: %v)", len(res.Loops), res.Skipped)
	}
	if res.Loops[0].Cursor != "innerc" || res.Loops[1].Cursor != "outerc" {
		t.Fatalf("transformation order = %s, %s", res.Loops[0].Cursor, res.Loops[1].Cursor)
	}
	assertEquivalent(t, sess, "totalcost", [][]sqltypes.Value{{}})
}

func TestMultipleLiveVariablesTupleReturn(t *testing.T) {
	sess := newDB(t, fig1DB)
	fn := parseFunc(t, `
create function costStats(@pkey int) returns varchar(60) as
begin
  declare @c float;
  declare @lo float = 1000000;
  declare @hi float = 0 - 1000000;
  declare @n int = 0;
  declare c cursor for select ps_supplycost from partsupp where ps_partkey = @pkey;
  open c;
  fetch next from c into @c;
  while @@fetch_status = 0
  begin
    if @c < @lo set @lo = @c;
    if @c > @hi set @hi = @c;
    set @n = @n + 1;
    fetch next from c into @c;
  end
  close c;
  deallocate c;
  return 'n=' || @n || ' lo=' || @lo || ' hi=' || @hi;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	lr := res.Loops[0]
	if len(lr.VTerm) != 3 {
		t.Fatalf("V_term = %v, want 3 live variables", lr.VTerm)
	}
	if lr.Aggregate.Returns.ID != sqltypes.TTuple {
		t.Fatalf("multi-var terminate must return a tuple, got %v", lr.Aggregate.Returns)
	}
	assertEquivalent(t, sess, "coststats", [][]sqltypes.Value{
		{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}, {sqltypes.NewInt(3)},
	})
}

func TestEmptyCursorSemantics(t *testing.T) {
	// Part 4 has no suppliers: the loop never runs. The aggregate runs
	// Init+Terminate and returns NULL fields — matching the NULL-prior
	// original (the paper's construction; see DESIGN.md §3.3).
	sess := newDB(t, fig1DB)
	fn := parseFunc(t, fig1UDF)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	registerTransformed(t, sess, fn, core.Options{})
	assertEquivalent(t, sess, "mincostsupp", [][]sqltypes.Value{{sqltypes.NewInt(4)}})
}

func TestLoopWithLocalTableVar(t *testing.T) {
	// A table variable declared inside the loop is loop-local and allowed.
	sess := newDB(t, fig1DB)
	fn := parseFunc(t, `
create function medianish(@pkey int) returns float as
begin
  declare @c float;
  declare @best float = 0;
  declare c cursor for select ps_supplycost from partsupp where ps_partkey = @pkey;
  open c;
  fetch next from c into @c;
  while @@fetch_status = 0
  begin
    declare @t table (v float);
    insert into @t values (@c);
    set @best = @best + (select max(v) from @t);
    fetch next from c into @c;
  end
  close c;
  deallocate c;
  return @best;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if len(res.Loops) != 1 {
		t.Fatalf("loop with local table var should transform; skipped: %v", res.Skipped)
	}
	assertEquivalent(t, sess, "medianish", [][]sqltypes.Value{
		{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)},
	})
}

func TestApplicabilityRejections(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			"persistent DML",
			`insert into part values (@n, 'x');`,
			"persistent",
		},
		{
			"procedure call",
			`exec someProc @n;`,
			"procedure",
		},
		{
			"result set",
			`select @n;`,
			"result sets",
		},
		{
			"return from module",
			`if @n > 2 return 0;`,
			"RETURN",
		},
	}
	for _, c := range cases {
		src := fmt.Sprintf(`
create function f(@x int) returns int as
begin
  declare @n int;
  declare @s int = 0;
  declare c cursor for select p_partkey from part;
  open c;
  fetch next from c into @n;
  while @@fetch_status = 0
  begin
    set @s = @s + @n;
    %s
    fetch next from c into @n;
  end
  close c;
  deallocate c;
  return @s;
end`, c.body)
		fn := parseFunc(t, src)
		_, res, err := core.TransformFunction(fn, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(res.Loops) != 0 || len(res.Skipped) != 1 {
			t.Fatalf("%s: loops=%d skipped=%v", c.name, len(res.Loops), res.Skipped)
		}
		if !strings.Contains(res.Skipped[0].Error(), c.want) {
			t.Fatalf("%s: reason %q does not mention %q", c.name, res.Skipped[0], c.want)
		}
	}
}

func TestOuterTableVarRejected(t *testing.T) {
	fn := parseFunc(t, `
create function f() returns int as
begin
  declare @t table (v int);
  declare @n int;
  declare c cursor for select p_partkey from part;
  open c;
  fetch next from c into @n;
  while @@fetch_status = 0
  begin
    insert into @t values (@n);
    fetch next from c into @n;
  end
  close c;
  deallocate c;
  return (select count(*) from @t);
end`)
	_, res, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) != 1 || !strings.Contains(res.Skipped[0].Error(), "table variable") {
		t.Fatalf("skipped = %v", res.Skipped)
	}
}

func TestTempTableInLoopAllowed(t *testing.T) {
	sess := newDB(t, fig1DB+`
create table #acc (v float);
`)
	fn := parseFunc(t, `
create function accumulate(@pkey int) returns int as
begin
  declare @c float;
  declare @n int = 0;
  declare c cursor for select ps_supplycost from partsupp where ps_partkey = @pkey;
  open c;
  fetch next from c into @c;
  while @@fetch_status = 0
  begin
    insert into #acc values (@c);
    set @n = @n + 1;
    fetch next from c into @c;
  end
  close c;
  deallocate c;
  return @n;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if len(res.Loops) != 1 {
		t.Fatalf("temp-table loop should transform; skipped: %v", res.Skipped)
	}
	// Run both; the temp table receives rows from both runs, and the counts
	// agree.
	v1, err := interp.CallFunctionByName(sess, "accumulate", sqltypes.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := interp.CallFunctionByName(sess, "accumulate_aggified", sqltypes.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Int() != 3 || v2.Int() != 3 {
		t.Fatalf("counts = %v, %v", v1, v2)
	}
	tab, _ := sess.TempTable("#acc")
	if tab.RowCount() != 6 {
		t.Fatalf("temp table rows = %d, want 6 (both runs insert)", tab.RowCount())
	}
}

func TestForLoopLifting(t *testing.T) {
	sess := newDB(t, "")
	fn := parseFunc(t, `
create function sumTo(@n int) returns int as
begin
  declare @i int;
  declare @s int = 0;
  for (@i = 0; @i <= @n; @i = @i + 1)
  begin
    set @s = @s + @i;
  end
  return @s;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	rewritten, res, err := core.TransformFunction(fn, core.Options{LiftForLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("FOR loop not lifted+aggified: %v", res.Skipped)
	}
	for _, lr := range res.Loops {
		if err := sess.Eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
			t.Fatal(err)
		}
	}
	rewritten.Name = "sumto_aggified"
	if err := sess.Eng.RegisterFunction(rewritten); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, sess, "sumto", [][]sqltypes.Value{
		{sqltypes.NewInt(0)}, {sqltypes.NewInt(1)}, {sqltypes.NewInt(100)}, {sqltypes.NewInt(-5)},
	})
}

func TestForLoopWithBodyConflictNotLifted(t *testing.T) {
	fn := parseFunc(t, `
create function f(@n int) returns int as
begin
  declare @i int;
  declare @s int = 0;
  for (@i = 0; @i <= @n; @i = @i + 1)
  begin
    set @i = @i + 1;
    set @s = @s + @i;
  end
  return @s;
end`)
	_, res, err := core.TransformFunction(fn, core.Options{LiftForLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 0 {
		t.Fatal("FOR loop mutating its control variable must not be lifted")
	}
}

func TestProcedureTransform(t *testing.T) {
	sess := newDB(t, fig1DB+`
create table results (k int, v float);
`)
	proc := parser.MustParse(`
create procedure summarize(@pkey int) as
begin
  declare @c float;
  declare @sum float = 0;
  declare c cursor for select ps_supplycost from partsupp where ps_partkey = @pkey;
  open c;
  fetch next from c into @c;
  while @@fetch_status = 0
  begin
    set @sum = @sum + @c;
    fetch next from c into @c;
  end
  close c;
  deallocate c;
  insert into results values (@pkey, @sum);
end`)[0].(*ast.CreateProcedure)
	if err := sess.Eng.RegisterProcedure(proc); err != nil {
		t.Fatal(err)
	}
	rewritten, res, err := core.TransformProcedure(proc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("skipped: %v", res.Skipped)
	}
	for _, lr := range res.Loops {
		if err := sess.Eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
			t.Fatal(err)
		}
	}
	rewritten.Name = "summarize_aggified"
	if err := sess.Eng.RegisterProcedure(rewritten); err != nil {
		t.Fatal(err)
	}
	if err := interp.CallProcedureByName(sess, "summarize", sqltypes.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if err := interp.CallProcedureByName(sess, "summarize_aggified", sqltypes.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	stmts := parser.MustParse("select v from results")
	_, rows, err := sess.Query(stmts[0].(*ast.QueryStmt).Query, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Float() != 17.5 || rows[1][0].Float() != 17.5 {
		t.Fatalf("results = %v", rows)
	}
}

func TestTransformIdempotentOnLoopFreeCode(t *testing.T) {
	fn := parseFunc(t, `
create function plain(@x int) returns int as
begin
  declare @y int = @x * 2;
  if @y > 10 set @y = 10;
  return @y;
end`)
	rewritten, res, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 0 || len(res.Skipped) != 0 {
		t.Fatal("loop-free function should be untouched")
	}
	if ast.Format(rewritten) != ast.Format(fn) {
		t.Fatal("loop-free function must round-trip unchanged")
	}
}

// Property test: randomly generated loop bodies (assignments, conditionals,
// arithmetic over the fetched value and two accumulators) behave identically
// before and after Aggify.
func TestRandomLoopEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20200614)) // SIGMOD 2020 :-)
	setup := `
create table vals (v int, w int);
insert into vals values
 (3, 1), (-2, 2), (7, 3), (0, 4), (5, 5), (-9, 6), (4, 7), (1, 8), (12, 9), (-1, 10);
`
	for trial := 0; trial < 30; trial++ {
		body := randomLoopBody(rng)
		ordered := ""
		if rng.Intn(2) == 0 {
			ordered = " order by w"
		}
		src := fmt.Sprintf(`
create function f%d(@seed int) returns float as
begin
  declare @v int;
  declare @acc float = @seed;
  declare @cnt int = 0;
  declare c cursor for select v from vals%s;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
%s
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return @acc + @cnt * 1000;
end`, trial, ordered, body)
		sess := newDB(t, setup)
		fn := parseFunc(t, src)
		if err := sess.Eng.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
		res := registerTransformed(t, sess, fn, core.Options{})
		if len(res.Loops) != 1 {
			t.Fatalf("trial %d: not transformed (%v)\n%s", trial, res.Skipped, src)
		}
		for _, seed := range []int64{0, 5, -3} {
			name := fmt.Sprintf("f%d", trial)
			orig, err := interp.CallFunctionByName(sess, name, sqltypes.NewInt(seed))
			if err != nil {
				t.Fatalf("trial %d orig: %v\n%s", trial, err, src)
			}
			agg, err := interp.CallFunctionByName(sess, name+"_aggified", sqltypes.NewInt(seed))
			if err != nil {
				t.Fatalf("trial %d aggified: %v\n%s", trial, err, src)
			}
			if !sqltypes.GroupEqual(orig, agg) {
				t.Fatalf("trial %d seed %d: %v vs %v\n%s", trial, seed, orig, agg, src)
			}
		}
	}
}

// randomLoopBody emits 1-4 random statements over @v (fetched), @acc, @cnt.
func randomLoopBody(rng *rand.Rand) string {
	var b strings.Builder
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "    set @acc = @acc + @v * %d;\n", 1+rng.Intn(3))
		case 1:
			fmt.Fprintf(&b, "    if @v > %d set @cnt = @cnt + 1;\n", rng.Intn(6)-3)
		case 2:
			fmt.Fprintf(&b, "    if @v %% 2 = 0 set @acc = @acc - %d; else set @acc = @acc + %d;\n", rng.Intn(5), rng.Intn(5))
		case 3:
			b.WriteString("    if @acc > 50 set @acc = @acc / 2;\n")
		case 4:
			fmt.Fprintf(&b, "    set @cnt = @cnt + %d;\n", rng.Intn(3))
		}
	}
	return b.String()
}
