package core_test

import (
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

// TestTransformBlock covers the client-program use case (§2.2): a bare
// statement block with parameters, transformed without a registered module.
func TestTransformBlock(t *testing.T) {
	body := parser.MustParse(`
begin
  declare @roi float;
  declare @cum float = 1.0;
  declare c cursor for
    select roi from monthly_investments where investor_id = @id order by m;
  open c;
  fetch next from c into @roi;
  while @@fetch_status = 0
  begin
    set @cum = @cum * (@roi + 1);
    fetch next from c into @roi;
  end
  close c;
  deallocate c;
  set @cum = @cum - 1;
end`)[0].(*ast.Block)
	params := []ast.Param{{Name: "@id", Type: sqltypes.Int}}
	rewritten, res, err := core.TransformBlock("clientprog", params, body, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %d (skipped %v)", len(res.Loops), res.Skipped)
	}
	if !res.Loops[0].OrderSensitive {
		t.Fatal("ordered client loop must be order-sensitive")
	}
	src := ast.Format(rewritten)
	if strings.Contains(strings.ToUpper(src), "CURSOR") {
		t.Fatalf("loop survived:\n%s", src)
	}
	if !strings.Contains(src, "clientprog_c_agg1(") {
		t.Fatalf("missing aggregate call:\n%s", src)
	}
	// The rewritten block executes end to end: run it inside a function.
	sess := newDB(t, `
create table monthly_investments (investor_id int, m int, roi float);
insert into monthly_investments values (7, 1, 0.5), (7, 2, -0.5), (8, 1, 1.0);
`)
	for _, lr := range res.Loops {
		if err := sess.Eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
			t.Fatal(err)
		}
	}
	fnSrc := "create function runblock(@id int) returns float as\n" + src[:strings.LastIndex(src, "END")] +
		"  RETURN @cum;\nEND"
	fn := parseFunc(t, fnSrc)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatalf("%v\n%s", err, fnSrc)
	}
	v, err := interp.CallFunctionByName(sess, "runblock", sqltypes.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	// 1.5 * 0.5 - 1 = -0.25
	if d := v.Float() + 0.25; d > 1e-12 || d < -1e-12 {
		t.Fatalf("cum = %v, want -0.25", v)
	}
}

// TestGeneratedAggregateUsesCompiledForTryCatchPrintFor drives the block
// compiler's less-trodden statements (FOR, TRY/CATCH, PRINT, multi-target
// SET) through a transformed loop whose body uses them.
func TestGeneratedAggregateExercisesCompiledStatements(t *testing.T) {
	sess := newDB(t, `
create table seqdata (k int, v int);
insert into seqdata values (1, 3), (1, 0), (1, 5), (2, 4);
`)
	fn := parseFunc(t, `
create function fancy(@k int) returns float as
begin
  declare @v int;
  declare @acc float = 0;
  declare @spins int = 0;
  declare c cursor for select v from seqdata where k = @k;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
    declare @i int;
    for (@i = 0; @i < @v; @i = @i + 1)
      set @spins = @spins + 1;
    begin try
      set @acc = @acc + 100.0 / @v;
    end try
    begin catch
      set @acc = @acc - 1;
    end catch
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return @acc + @spins;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if len(res.Loops) != 1 {
		t.Fatalf("skipped: %v", res.Skipped)
	}
	assertEquivalent(t, sess, "fancy", [][]sqltypes.Value{
		{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}, {sqltypes.NewInt(99)},
	})
}

// TestSynthesizedProjectionAliases covers cursor queries whose projection
// items are expressions (the rewrite must invent column names).
func TestSynthesizedProjectionAliases(t *testing.T) {
	sess := newDB(t, `
create table raw (a int, b int);
insert into raw values (1, 2), (3, 4);
`)
	fn := parseFunc(t, `
create function sums() returns float as
begin
  declare @x float;
  declare @y float;
  declare @t float = 0;
  declare c cursor for select a + b, a * b from raw;
  open c;
  fetch next from c into @x, @y;
  while @@fetch_status = 0
  begin
    set @t = @t + @x + @y;
    fetch next from c into @x, @y;
  end
  close c;
  deallocate c;
  return @t;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if len(res.Loops) != 1 {
		t.Fatalf("skipped: %v", res.Skipped)
	}
	assertEquivalent(t, sess, "sums", [][]sqltypes.Value{{}})
}

// TestUnusedFetchVariableDropped: a fetch variable never read in the loop
// body does not become an aggregate parameter.
func TestUnusedFetchVariableDropped(t *testing.T) {
	fn := parseFunc(t, `
create function countRows() returns int as
begin
  declare @v int;
  declare @n int = 0;
  declare c cursor for select x from t;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
    set @n = @n + 1;
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return @n;
end`)
	_, res, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr := res.Loops[0]
	for _, p := range lr.Params {
		if p == "@v" {
			t.Fatalf("unused fetch var became a parameter: %v", lr.Params)
		}
	}
}

// TestTransformedFunctionIsStable: transforming the already-transformed
// module is a no-op (zero loops found).
func TestTransformIdempotence(t *testing.T) {
	fn := parseFunc(t, fig1UDF)
	rewritten, res, err := core.TransformFunction(fn, core.Options{})
	if err != nil || len(res.Loops) != 1 {
		t.Fatalf("first pass: %v / %v", err, res)
	}
	again, res2, err := core.TransformFunction(rewritten, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Loops) != 0 || len(res2.Skipped) != 0 {
		t.Fatalf("second pass found loops: %+v", res2)
	}
	if ast.Format(again) != ast.Format(rewritten) {
		t.Fatal("second pass changed the module")
	}
}

// TestTwoSequentialLoops: one module with two independent cursor loops —
// both transform, each with its own aggregate.
func TestTwoSequentialLoops(t *testing.T) {
	sess := newDB(t, `
create table xs (v int);
create table ys (v int);
insert into xs values (1), (2), (3);
insert into ys values (10), (20);
`)
	fn := parseFunc(t, `
create function twoLoops() returns int as
begin
  declare @v int;
  declare @sx int = 0;
  declare @sy int = 0;
  declare cx cursor for select v from xs;
  open cx;
  fetch next from cx into @v;
  while @@fetch_status = 0
  begin
    set @sx = @sx + @v;
    fetch next from cx into @v;
  end
  close cx;
  deallocate cx;
  declare cy cursor for select v from ys;
  open cy;
  fetch next from cy into @v;
  while @@fetch_status = 0
  begin
    set @sy = @sy + @v;
    fetch next from cy into @v;
  end
  close cy;
  deallocate cy;
  return @sx * 1000 + @sy;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if len(res.Loops) != 2 {
		t.Fatalf("loops = %d (skipped %v)", len(res.Loops), res.Skipped)
	}
	if res.Loops[0].Aggregate.Name == res.Loops[1].Aggregate.Name {
		t.Fatal("aggregate names must be unique")
	}
	assertEquivalent(t, sess, "twoloops", [][]sqltypes.Value{{}})
}

// TestLoopInsideIfBranch: the whole cursor pattern nested under an IF.
func TestLoopInsideIfBranch(t *testing.T) {
	sess := newDB(t, `
create table zs (v int);
insert into zs values (2), (4);
`)
	fn := parseFunc(t, `
create function maybeSum(@go int) returns int as
begin
  declare @s int = -1;
  if @go = 1
  begin
    declare @v int;
    set @s = 0;
    declare c cursor for select v from zs;
    open c;
    fetch next from c into @v;
    while @@fetch_status = 0
    begin
      set @s = @s + @v;
      fetch next from c into @v;
    end
    close c;
    deallocate c;
  end
  return @s;
end`)
	if err := sess.Eng.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	res := registerTransformed(t, sess, fn, core.Options{})
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %d (skipped %v)", len(res.Loops), res.Skipped)
	}
	assertEquivalent(t, sess, "maybesum", [][]sqltypes.Value{
		{sqltypes.NewInt(1)}, {sqltypes.NewInt(0)},
	})
}
