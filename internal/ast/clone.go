package ast

// CloneExpr returns a deep copy of e. The Aggify transformer clones loop
// bodies into aggregate definitions so that later rewrites of one copy do
// not corrupt the other.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal:
		c := *x
		return &c
	case *ColRef:
		c := *x
		return &c
	case *VarRef:
		c := *x
		return &c
	case *ParamRef:
		c := *x
		return &c
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, E: CloneExpr(x.E)}
	case *IsNullExpr:
		return &IsNullExpr{E: CloneExpr(x.E), Negate: x.Negate}
	case *CaseExpr:
		c := &CaseExpr{Else: CloneExpr(x.Else)}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, WhenClause{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)})
		}
		return c
	case *FuncCall:
		c := &FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *Subquery:
		return &Subquery{Query: CloneSelect(x.Query), Exists: x.Exists}
	case *InExpr:
		c := &InExpr{E: CloneExpr(x.E), Negate: x.Negate, Query: CloneSelect(x.Query)}
		for _, v := range x.List {
			c.List = append(c.List, CloneExpr(v))
		}
		return c
	case *BetweenExpr:
		return &BetweenExpr{E: CloneExpr(x.E), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Negate: x.Negate}
	}
	panic("ast: CloneExpr of unknown node")
}

// CloneSelect returns a deep copy of q.
func CloneSelect(q *Select) *Select {
	if q == nil {
		return nil
	}
	c := &Select{
		Distinct:      q.Distinct,
		Top:           CloneExpr(q.Top),
		Where:         CloneExpr(q.Where),
		Having:        CloneExpr(q.Having),
		Union:         CloneSelect(q.Union),
		OrderEnforced: q.OrderEnforced,
	}
	for _, cte := range q.With {
		c.With = append(c.With, CTE{Name: cte.Name, Cols: append([]string(nil), cte.Cols...), Query: CloneSelect(cte.Query)})
	}
	for _, it := range q.Items {
		c.Items = append(c.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias, Star: it.Star})
	}
	for _, te := range q.From {
		c.From = append(c.From, CloneTableExpr(te))
	}
	for _, g := range q.GroupBy {
		c.GroupBy = append(c.GroupBy, CloneExpr(g))
	}
	for _, o := range q.OrderBy {
		c.OrderBy = append(c.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	return c
}

// CloneTableExpr returns a deep copy of te.
func CloneTableExpr(te TableExpr) TableExpr {
	switch t := te.(type) {
	case *TableRef:
		c := *t
		return &c
	case *SubqueryRef:
		return &SubqueryRef{Query: CloneSelect(t.Query), Alias: t.Alias}
	case *Join:
		return &Join{Kind: t.Kind, L: CloneTableExpr(t.L), R: CloneTableExpr(t.R), On: CloneExpr(t.On)}
	}
	panic("ast: CloneTableExpr of unknown node")
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch st := s.(type) {
	case *Block:
		c := &Block{}
		for _, inner := range st.Stmts {
			c.Stmts = append(c.Stmts, CloneStmt(inner))
		}
		return c
	case *DeclareVar:
		return &DeclareVar{Name: st.Name, Type: st.Type, Init: CloneExpr(st.Init)}
	case *DeclareTable:
		return &DeclareTable{Name: st.Name, Cols: append([]ColumnDef(nil), st.Cols...)}
	case *SetStmt:
		return &SetStmt{Targets: append([]string(nil), st.Targets...), Value: CloneExpr(st.Value)}
	case *SetOption:
		return &SetOption{Name: st.Name, Value: CloneExpr(st.Value)}
	case *IfStmt:
		return &IfStmt{Cond: CloneExpr(st.Cond), Then: CloneStmt(st.Then), Else: CloneStmt(st.Else)}
	case *WhileStmt:
		return &WhileStmt{Cond: CloneExpr(st.Cond), Body: CloneStmt(st.Body)}
	case *ForStmt:
		return &ForStmt{
			InitVar: st.InitVar, InitExpr: CloneExpr(st.InitExpr),
			Cond:    CloneExpr(st.Cond),
			PostVar: st.PostVar, PostExpr: CloneExpr(st.PostExpr),
			Body: CloneStmt(st.Body),
		}
	case *BreakStmt:
		return &BreakStmt{}
	case *TxnStmt:
		return &TxnStmt{Op: st.Op}
	case *ContinueStmt:
		return &ContinueStmt{}
	case *ReturnStmt:
		return &ReturnStmt{Value: CloneExpr(st.Value)}
	case *DeclareCursor:
		return &DeclareCursor{Name: st.Name, Query: CloneSelect(st.Query)}
	case *OpenCursor:
		return &OpenCursor{Name: st.Name}
	case *CloseCursor:
		return &CloseCursor{Name: st.Name}
	case *DeallocateCursor:
		return &DeallocateCursor{Name: st.Name}
	case *FetchStmt:
		return &FetchStmt{Cursor: st.Cursor, Into: append([]string(nil), st.Into...)}
	case *QueryStmt:
		return &QueryStmt{Query: CloneSelect(st.Query)}
	case *ExplainStmt:
		return &ExplainStmt{Analyze: st.Analyze, Query: CloneSelect(st.Query)}
	case *InsertStmt:
		c := &InsertStmt{Table: st.Table, Columns: append([]string(nil), st.Columns...), Query: CloneSelect(st.Query)}
		for _, row := range st.Rows {
			cr := make([]Expr, len(row))
			for i, e := range row {
				cr[i] = CloneExpr(e)
			}
			c.Rows = append(c.Rows, cr)
		}
		return c
	case *UpdateStmt:
		c := &UpdateStmt{Table: st.Table, Where: CloneExpr(st.Where)}
		for _, sc := range st.Sets {
			c.Sets = append(c.Sets, SetClause{Column: sc.Column, Value: CloneExpr(sc.Value)})
		}
		return c
	case *DeleteStmt:
		return &DeleteStmt{Table: st.Table, Where: CloneExpr(st.Where)}
	case *TryCatch:
		return &TryCatch{Try: CloneStmt(st.Try), Catch: CloneStmt(st.Catch)}
	case *PrintStmt:
		return &PrintStmt{E: CloneExpr(st.E)}
	case *ExecStmt:
		c := &ExecStmt{Proc: st.Proc}
		for _, a := range st.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *ExplainProcStmt:
		return &ExplainProcStmt{Proc: st.Proc}
	case *TraceProcStmt:
		c := &TraceProcStmt{Proc: st.Proc}
		for _, a := range st.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *CreateTable:
		return &CreateTable{Name: st.Name, Cols: append([]ColumnDef(nil), st.Cols...)}
	case *CreateIndex:
		c := *st
		return &c
	case *CreateFunction:
		return &CreateFunction{Name: st.Name, Params: cloneParams(st.Params), Returns: st.Returns, Body: CloneStmt(st.Body).(*Block)}
	case *CreateProcedure:
		return &CreateProcedure{Name: st.Name, Params: cloneParams(st.Params), Body: CloneStmt(st.Body).(*Block)}
	case *CreateAggregate:
		out := &CreateAggregate{
			Name: st.Name, Params: cloneParams(st.Params), Returns: st.Returns,
			Fields:    append([]ColumnDef(nil), st.Fields...),
			Init:      CloneStmt(st.Init).(*Block),
			Accum:     CloneStmt(st.Accum).(*Block),
			Terminate: CloneStmt(st.Terminate).(*Block),
		}
		if st.Merge != nil {
			out.Merge = CloneStmt(st.Merge).(*Block)
		}
		return out
	}
	panic("ast: CloneStmt of unknown node")
}

func cloneParams(params []Param) []Param {
	out := make([]Param, len(params))
	for i, p := range params {
		out[i] = Param{Name: p.Name, Type: p.Type, Default: CloneExpr(p.Default)}
	}
	return out
}
