package ast

import (
	"fmt"
	"strings"
)

// Expression printing (SQL syntax, suitable for re-parsing).

func (e *Literal) String() string { return e.Val.String() }

func (e *ColRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *VarRef) String() string   { return e.Name }
func (e *ParamRef) String() string { return "?" }

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *UnaryExpr) String() string {
	if e.Op == '-' {
		return fmt.Sprintf("(-%s)", e.E)
	}
	return fmt.Sprintf("(NOT %s)", e.E)
}

func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else)
	}
	b.WriteString(" END")
	return b.String()
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e *Subquery) String() string {
	if e.Exists {
		return "EXISTS (" + e.Query.String() + ")"
	}
	return "(" + e.Query.String() + ")"
}

func (e *InExpr) String() string {
	not := ""
	if e.Negate {
		not = " NOT"
	}
	if e.Query != nil {
		return fmt.Sprintf("(%s%s IN (%s))", e.E, not, e.Query)
	}
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	return fmt.Sprintf("(%s%s IN (%s))", e.E, not, strings.Join(items, ", "))
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Negate {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", e.E, not, e.Lo, e.Hi)
}

// Table expression printing.

func (t *TableRef) String() string {
	if t.Alias != "" && t.Alias != t.Name {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

func (t *SubqueryRef) String() string {
	return "(" + t.Query.String() + ") " + t.Alias
}

func (t *Join) String() string {
	return fmt.Sprintf("%s %s %s ON %s", t.L, t.Kind, t.R, t.On)
}

// Query printing.

func (q *Select) String() string {
	var b strings.Builder
	if len(q.With) > 0 {
		b.WriteString("WITH ")
		for i, cte := range q.With {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(cte.Name)
			if len(cte.Cols) > 0 {
				b.WriteString("(" + strings.Join(cte.Cols, ", ") + ")")
			}
			b.WriteString(" AS (" + cte.Query.String() + ")")
		}
		b.WriteByte(' ')
	}
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if q.Top != nil {
		fmt.Fprintf(&b, "TOP %s ", q.Top)
	}
	for i, it := range q.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Alias != "":
			b.WriteString(it.Alias + ".*")
		case it.Star:
			b.WriteByte('*')
		default:
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(q.From) > 0 {
		b.WriteString(" FROM ")
		for i, te := range q.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(te.String())
		}
	}
	if q.Where != nil {
		b.WriteString(" WHERE " + q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if q.Having != nil {
		b.WriteString(" HAVING " + q.Having.String())
	}
	if q.Union != nil {
		b.WriteString(" UNION ALL " + q.Union.String())
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.OrderEnforced {
		b.WriteString(" OPTION (ORDER ENFORCED)")
	}
	return b.String()
}

// Statement printing with indentation.

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

// Format renders a statement tree as indented dialect source.
func Format(s Stmt) string {
	var p printer
	p.stmt(s)
	return p.b.String()
}

// FormatProgram renders a sequence of top-level statements, separating
// batches with GO lines (so CREATE statements re-parse cleanly).
func FormatProgram(stmts []Stmt) string {
	var parts []string
	for _, s := range stmts {
		parts = append(parts, Format(s))
	}
	return strings.Join(parts, "GO\n")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		p.line("BEGIN")
		p.indent++
		for _, inner := range st.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("END")
	case *DeclareVar:
		if st.Init != nil {
			p.line("DECLARE %s %s = %s;", st.Name, st.Type, st.Init)
		} else {
			p.line("DECLARE %s %s;", st.Name, st.Type)
		}
	case *DeclareTable:
		cols := make([]string, len(st.Cols))
		for i, c := range st.Cols {
			cols[i] = c.Name + " " + c.Type.String()
		}
		p.line("DECLARE %s TABLE (%s);", st.Name, strings.Join(cols, ", "))
	case *SetStmt:
		if len(st.Targets) == 1 {
			p.line("SET %s = %s;", st.Targets[0], st.Value)
		} else {
			p.line("SET (%s) = %s;", strings.Join(st.Targets, ", "), st.Value)
		}
	case *SetOption:
		p.line("SET %s = %s;", strings.ToUpper(st.Name), st.Value)
	case *IfStmt:
		p.line("IF %s", st.Cond)
		p.indentedStmt(st.Then)
		if st.Else != nil {
			p.line("ELSE")
			p.indentedStmt(st.Else)
		}
	case *WhileStmt:
		p.line("WHILE %s", st.Cond)
		p.indentedStmt(st.Body)
	case *ForStmt:
		p.line("FOR (%s = %s; %s; %s = %s)", st.InitVar, st.InitExpr, st.Cond, st.PostVar, st.PostExpr)
		p.indentedStmt(st.Body)
	case *BreakStmt:
		p.line("BREAK;")
	case *TxnStmt:
		p.line("%s;", st.Op)
	case *ContinueStmt:
		p.line("CONTINUE;")
	case *ReturnStmt:
		if st.Value != nil {
			p.line("RETURN %s;", st.Value)
		} else {
			p.line("RETURN;")
		}
	case *DeclareCursor:
		p.line("DECLARE %s CURSOR FOR", st.Name)
		p.indent++
		p.line("%s;", st.Query)
		p.indent--
	case *OpenCursor:
		p.line("OPEN %s;", st.Name)
	case *CloseCursor:
		p.line("CLOSE %s;", st.Name)
	case *DeallocateCursor:
		p.line("DEALLOCATE %s;", st.Name)
	case *FetchStmt:
		p.line("FETCH NEXT FROM %s INTO %s;", st.Cursor, strings.Join(st.Into, ", "))
	case *QueryStmt:
		p.line("%s;", st.Query)
	case *ExplainStmt:
		kw := "EXPLAIN"
		if st.Analyze {
			kw = "EXPLAIN ANALYZE"
		}
		p.line("%s %s;", kw, st.Query)
	case *InsertStmt:
		cols := ""
		if len(st.Columns) > 0 {
			cols = " (" + strings.Join(st.Columns, ", ") + ")"
		}
		if st.Query != nil {
			p.line("INSERT INTO %s%s %s;", st.Table, cols, st.Query)
		} else {
			rows := make([]string, len(st.Rows))
			for i, r := range st.Rows {
				vals := make([]string, len(r))
				for j, v := range r {
					vals[j] = v.String()
				}
				rows[i] = "(" + strings.Join(vals, ", ") + ")"
			}
			p.line("INSERT INTO %s%s VALUES %s;", st.Table, cols, strings.Join(rows, ", "))
		}
	case *UpdateStmt:
		sets := make([]string, len(st.Sets))
		for i, sc := range st.Sets {
			sets[i] = sc.Column + " = " + sc.Value.String()
		}
		if st.Where != nil {
			p.line("UPDATE %s SET %s WHERE %s;", st.Table, strings.Join(sets, ", "), st.Where)
		} else {
			p.line("UPDATE %s SET %s;", st.Table, strings.Join(sets, ", "))
		}
	case *DeleteStmt:
		if st.Where != nil {
			p.line("DELETE FROM %s WHERE %s;", st.Table, st.Where)
		} else {
			p.line("DELETE FROM %s;", st.Table)
		}
	case *TryCatch:
		p.line("BEGIN TRY")
		p.indentedStmt(st.Try)
		p.line("END TRY")
		p.line("BEGIN CATCH")
		p.indentedStmt(st.Catch)
		p.line("END CATCH")
	case *PrintStmt:
		p.line("PRINT %s;", st.E)
	case *ExecStmt:
		args := make([]string, len(st.Args))
		for i, a := range st.Args {
			args[i] = a.String()
		}
		p.line("EXEC %s %s;", st.Proc, strings.Join(args, ", "))
	case *ExplainProcStmt:
		p.line("EXPLAIN PROCEDURE %s;", st.Proc)
	case *TraceProcStmt:
		args := make([]string, len(st.Args))
		for i, a := range st.Args {
			args[i] = a.String()
		}
		p.line("TRACE PROCEDURE %s %s;", st.Proc, strings.Join(args, ", "))
	case *CreateTable:
		cols := make([]string, len(st.Cols))
		for i, c := range st.Cols {
			cols[i] = c.Name + " " + c.Type.String()
		}
		p.line("CREATE TABLE %s (%s);", st.Name, strings.Join(cols, ", "))
	case *CreateIndex:
		using := ""
		if st.Ordered {
			using = " USING ORDERED"
		}
		p.line("CREATE INDEX %s ON %s(%s)%s;", st.Name, st.Table, st.Column, using)
	case *CreateFunction:
		p.line("CREATE FUNCTION %s(%s) RETURNS %s AS", st.Name, formatParams(st.Params), st.Returns)
		p.stmt(st.Body)
	case *CreateProcedure:
		p.line("CREATE PROCEDURE %s(%s) AS", st.Name, formatParams(st.Params))
		p.stmt(st.Body)
	case *CreateAggregate:
		p.line("CREATE AGGREGATE %s(%s) RETURNS %s AS", st.Name, formatParams(st.Params), st.Returns)
		p.line("BEGIN")
		p.indent++
		fields := make([]string, len(st.Fields))
		for i, f := range st.Fields {
			fields[i] = f.Name + " " + f.Type.String()
		}
		p.line("FIELDS (%s);", strings.Join(fields, ", "))
		p.line("INIT")
		p.stmt(st.Init)
		p.line("ACCUMULATE")
		p.stmt(st.Accum)
		p.line("TERMINATE")
		p.stmt(st.Terminate)
		if st.Merge != nil {
			p.line("MERGE")
			p.stmt(st.Merge)
		}
		p.indent--
		p.line("END")
	default:
		p.line("/* unknown statement %T */", s)
	}
}

// indentedStmt prints a sub-statement one level in; blocks manage their own
// BEGIN/END bracketing at the current level for readability.
func (p *printer) indentedStmt(s Stmt) {
	if _, isBlock := s.(*Block); isBlock {
		p.stmt(s)
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

func formatParams(params []Param) string {
	parts := make([]string, len(params))
	for i, pr := range params {
		parts[i] = pr.Name + " " + pr.Type.String()
		if pr.Default != nil {
			parts[i] += " = " + pr.Default.String()
		}
	}
	return strings.Join(parts, ", ")
}
