package ast

// WalkExpr calls fn for e and every sub-expression of e, in pre-order.
// Returning false from fn stops descent into that node's children.
// Subqueries are descended into (their expressions are visited) unless fn
// returns false on the Subquery node.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.E, fn)
	case *IsNullExpr:
		WalkExpr(x.E, fn)
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *Subquery:
		WalkSelectExprs(x.Query, fn)
	case *InExpr:
		WalkExpr(x.E, fn)
		for _, v := range x.List {
			WalkExpr(v, fn)
		}
		if x.Query != nil {
			WalkSelectExprs(x.Query, fn)
		}
	case *BetweenExpr:
		WalkExpr(x.E, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	}
}

// WalkSelectExprs visits every expression embedded in a query, including
// CTEs, derived tables, join conditions, and UNION ALL branches.
func WalkSelectExprs(q *Select, fn func(Expr) bool) {
	if q == nil {
		return
	}
	for _, cte := range q.With {
		WalkSelectExprs(cte.Query, fn)
	}
	if q.Top != nil {
		WalkExpr(q.Top, fn)
	}
	for _, it := range q.Items {
		WalkExpr(it.Expr, fn)
	}
	for _, te := range q.From {
		walkTableExprExprs(te, fn)
	}
	WalkExpr(q.Where, fn)
	for _, g := range q.GroupBy {
		WalkExpr(g, fn)
	}
	WalkExpr(q.Having, fn)
	for _, o := range q.OrderBy {
		WalkExpr(o.Expr, fn)
	}
	WalkSelectExprs(q.Union, fn)
}

func walkTableExprExprs(te TableExpr, fn func(Expr) bool) {
	switch t := te.(type) {
	case *SubqueryRef:
		WalkSelectExprs(t.Query, fn)
	case *Join:
		walkTableExprExprs(t.L, fn)
		walkTableExprExprs(t.R, fn)
		WalkExpr(t.On, fn)
	}
}

// WalkStmt calls fn for s and every nested statement, in pre-order.
// Returning false stops descent into that statement's children.
func WalkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch st := s.(type) {
	case *Block:
		for _, inner := range st.Stmts {
			WalkStmt(inner, fn)
		}
	case *IfStmt:
		WalkStmt(st.Then, fn)
		WalkStmt(st.Else, fn)
	case *WhileStmt:
		WalkStmt(st.Body, fn)
	case *ForStmt:
		WalkStmt(st.Body, fn)
	case *TryCatch:
		WalkStmt(st.Try, fn)
		WalkStmt(st.Catch, fn)
	case *CreateFunction:
		WalkStmt(st.Body, fn)
	case *CreateProcedure:
		WalkStmt(st.Body, fn)
	case *CreateAggregate:
		WalkStmt(st.Init, fn)
		WalkStmt(st.Accum, fn)
		WalkStmt(st.Terminate, fn)
		if st.Merge != nil {
			WalkStmt(st.Merge, fn)
		}
	}
}

// StmtExprs calls fn for every expression directly attached to statement s
// (not descending into nested statements; queries embedded in the statement
// are visited through WalkSelectExprs).
func StmtExprs(s Stmt, fn func(Expr) bool) {
	visit := func(e Expr) {
		if e != nil {
			WalkExpr(e, fn)
		}
	}
	switch st := s.(type) {
	case *DeclareVar:
		visit(st.Init)
	case *SetStmt:
		visit(st.Value)
	case *SetOption:
		visit(st.Value)
	case *IfStmt:
		visit(st.Cond)
	case *WhileStmt:
		visit(st.Cond)
	case *ForStmt:
		visit(st.InitExpr)
		visit(st.Cond)
		visit(st.PostExpr)
	case *ReturnStmt:
		visit(st.Value)
	case *DeclareCursor:
		WalkSelectExprs(st.Query, fn)
	case *QueryStmt:
		WalkSelectExprs(st.Query, fn)
	case *ExplainStmt:
		WalkSelectExprs(st.Query, fn)
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				visit(e)
			}
		}
		if st.Query != nil {
			WalkSelectExprs(st.Query, fn)
		}
	case *UpdateStmt:
		for _, sc := range st.Sets {
			visit(sc.Value)
		}
		visit(st.Where)
	case *DeleteStmt:
		visit(st.Where)
	case *PrintStmt:
		visit(st.E)
	case *ExecStmt:
		for _, a := range st.Args {
			visit(a)
		}
	case *TraceProcStmt:
		for _, a := range st.Args {
			visit(a)
		}
	}
}

// HasSubquery reports whether e contains an embedded SELECT anywhere: a
// scalar/EXISTS subquery or an IN (subquery). The planner's rewrite rules
// use it to keep predicates with nested query blocks out of transformations
// that only reason about the current block.
func HasSubquery(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch t := x.(type) {
		case *Subquery:
			found = true
			return false
		case *InExpr:
			if t.Query != nil {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// ColRefs returns every column reference in e in visit order, including
// references inside embedded subqueries (correlated references matter to
// the callers classifying predicates).
func ColRefs(e Expr) []*ColRef {
	var out []*ColRef
	WalkExpr(e, func(x Expr) bool {
		if cr, ok := x.(*ColRef); ok {
			out = append(out, cr)
		}
		return true
	})
	return out
}

// VarsInExpr returns the set of variable names referenced in e, including
// variables inside embedded subqueries.
func VarsInExpr(e Expr) map[string]bool {
	out := map[string]bool{}
	WalkExpr(e, func(x Expr) bool {
		if v, ok := x.(*VarRef); ok {
			out[v.Name] = true
		}
		return true
	})
	return out
}

// VarsInSelect returns the set of variable names referenced anywhere in q.
func VarsInSelect(q *Select) map[string]bool {
	out := map[string]bool{}
	WalkSelectExprs(q, func(x Expr) bool {
		if v, ok := x.(*VarRef); ok {
			out[v.Name] = true
		}
		return true
	})
	return out
}
