package ast

// Select is a SELECT query (optionally a UNION ALL chain head).
type Select struct {
	With     []CTE
	Distinct bool
	Top      Expr // TOP n, nil when absent
	Items    []SelectItem
	From     []TableExpr // comma-list; empty for SELECT <exprs> with no FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Union    *Select // UNION ALL continuation, nil when absent

	// OrderEnforced is set by the Aggify rewrite (paper Eq. 6) on queries
	// whose aggregate must observe the cursor's ORDER BY: the planner then
	// places a Sort below the aggregation and uses the streaming aggregate
	// operator. It is never produced by the parser directly; the dialect
	// surfaces it as OPTION (ORDER ENFORCED).
	OrderEnforced bool
}

// SelectItem is one projection item.
type SelectItem struct {
	Expr  Expr
	Alias string // lower-cased; "" when unnamed
	Star  bool   // SELECT * (Expr nil; Alias may hold a table qualifier)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CTE is one WITH common table expression. A CTE whose body references its
// own name (directly or through UNION ALL) is recursive.
type CTE struct {
	Name  string // lower-cased
	Cols  []string
	Query *Select
}

// TableExpr is a FROM-clause item.
type TableExpr interface {
	tableExprNode()
	String() string
}

// TableRef names a base table, table variable (@name), or CTE.
type TableRef struct {
	Name  string // lower-cased; includes '@' sigil for table variables
	Alias string // lower-cased; "" when absent
}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Query *Select
	Alias string
}

// JoinKind enumerates join types.
type JoinKind uint8

const (
	JoinInner JoinKind = iota
	JoinLeft
)

func (k JoinKind) String() string {
	if k == JoinLeft {
		return "LEFT JOIN"
	}
	return "JOIN"
}

// Join is an explicit ANSI join.
type Join struct {
	Kind JoinKind
	L, R TableExpr
	On   Expr
}

func (*TableRef) tableExprNode()    {}
func (*SubqueryRef) tableExprNode() {}
func (*Join) tableExprNode()        {}

// BindingName returns the name this table expression is visible as in the
// enclosing scope ("" for joins, which expose their children's names).
func BindingName(te TableExpr) string {
	switch t := te.(type) {
	case *TableRef:
		if t.Alias != "" {
			return t.Alias
		}
		return t.Name
	case *SubqueryRef:
		return t.Alias
	}
	return ""
}
