package ast

import (
	"strings"
	"testing"

	"aggify/internal/sqltypes"
)

func sampleStmt() Stmt {
	return &Block{Stmts: []Stmt{
		&DeclareVar{Name: "@x", Type: sqltypes.Int, Init: IntLit(1)},
		&IfStmt{
			Cond: Bin(sqltypes.OpGt, Var("@x"), IntLit(0)),
			Then: &SetStmt{Targets: []string{"@x"}, Value: Bin(sqltypes.OpAdd, Var("@x"), IntLit(1))},
			Else: &WhileStmt{Cond: Lit(sqltypes.NewBool(true)), Body: &BreakStmt{}},
		},
		&DeclareCursor{Name: "c", Query: &Select{
			Items: []SelectItem{{Expr: Col("v")}},
			From:  []TableExpr{&TableRef{Name: "t"}},
			Where: Eq(Col("k"), Var("@x")),
		}},
		&TryCatch{
			Try:   &Block{Stmts: []Stmt{&PrintStmt{E: StrLit("hi")}}},
			Catch: &Block{Stmts: []Stmt{&ReturnStmt{Value: IntLit(0)}}},
		},
	}}
}

func TestCloneIndependence(t *testing.T) {
	orig := sampleStmt()
	clone := CloneStmt(orig)
	if Format(orig) != Format(clone) {
		t.Fatal("clone formats differently")
	}
	// Mutate the clone; the original must not change.
	before := Format(orig)
	cb := clone.(*Block)
	cb.Stmts[0].(*DeclareVar).Name = "@mutated"
	cb.Stmts[1].(*IfStmt).Cond = Lit(sqltypes.NewBool(false))
	cb.Stmts[2].(*DeclareCursor).Query.Where = nil
	if Format(orig) != before {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestCloneExprIndependence(t *testing.T) {
	e := &CaseExpr{
		Whens: []WhenClause{{Cond: Eq(Col("a"), IntLit(1)), Then: &Subquery{Query: &Select{
			Items: []SelectItem{{Expr: &FuncCall{Name: "count", Star: true}}},
			From:  []TableExpr{&TableRef{Name: "t"}},
		}}}},
		Else: &BetweenExpr{E: Col("b"), Lo: IntLit(0), Hi: IntLit(9)},
	}
	c := CloneExpr(e).(*CaseExpr)
	before := e.String()
	c.Whens[0].Cond = Lit(sqltypes.Null)
	c.Else.(*BetweenExpr).Negate = true
	if e.String() != before {
		t.Fatal("clone aliased the original")
	}
}

func TestWalkStmtVisitsAll(t *testing.T) {
	var kinds []string
	WalkStmt(sampleStmt(), func(s Stmt) bool {
		switch s.(type) {
		case *DeclareVar:
			kinds = append(kinds, "declare")
		case *IfStmt:
			kinds = append(kinds, "if")
		case *WhileStmt:
			kinds = append(kinds, "while")
		case *BreakStmt:
			kinds = append(kinds, "break")
		case *DeclareCursor:
			kinds = append(kinds, "cursor")
		case *TryCatch:
			kinds = append(kinds, "try")
		case *ReturnStmt:
			kinds = append(kinds, "return")
		}
		return true
	})
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"declare", "if", "while", "break", "cursor", "try", "return"} {
		if !strings.Contains(joined, want) {
			t.Errorf("walk missed %s (saw %s)", want, joined)
		}
	}
}

func TestWalkStmtPruning(t *testing.T) {
	n := 0
	WalkStmt(sampleStmt(), func(s Stmt) bool {
		n++
		_, isIf := s.(*IfStmt)
		return !isIf // do not descend into the IF
	})
	WalkStmt(sampleStmt(), func(s Stmt) bool {
		if _, ok := s.(*WhileStmt); ok {
			t.Skip("pruning check is structural; see below")
		}
		return true
	})
	full := 0
	WalkStmt(sampleStmt(), func(Stmt) bool { full++; return true })
	if n >= full {
		t.Fatalf("pruned walk (%d) should visit fewer nodes than full walk (%d)", n, full)
	}
}

func TestVarsInSelect(t *testing.T) {
	q := &Select{
		Items: []SelectItem{{Expr: &Subquery{Query: &Select{
			Items: []SelectItem{{Expr: Var("@inner")}},
		}}}},
		Where: Eq(Col("k"), Var("@outer")),
		Top:   Var("@n"),
	}
	vars := VarsInSelect(q)
	for _, want := range []string{"@inner", "@outer", "@n"} {
		if !vars[want] {
			t.Errorf("missing %s in %v", want, vars)
		}
	}
}

func TestAndHelper(t *testing.T) {
	if And() != nil {
		t.Fatal("And() of nothing should be nil")
	}
	if And(nil, nil) != nil {
		t.Fatal("And(nil,nil) should be nil")
	}
	single := Eq(Col("a"), IntLit(1))
	if And(nil, single, nil) != single {
		t.Fatal("And of one expr should return it")
	}
	both := And(single, Eq(Col("b"), IntLit(2)))
	if b, ok := both.(*BinExpr); !ok || b.Op != sqltypes.OpAnd {
		t.Fatalf("And of two = %v", both)
	}
}

func TestBindingName(t *testing.T) {
	if BindingName(&TableRef{Name: "t"}) != "t" {
		t.Fatal("plain name")
	}
	if BindingName(&TableRef{Name: "t", Alias: "x"}) != "x" {
		t.Fatal("alias wins")
	}
	if BindingName(&SubqueryRef{Alias: "q"}) != "q" {
		t.Fatal("derived alias")
	}
	if BindingName(&Join{}) != "" {
		t.Fatal("joins expose no binding")
	}
}

func TestFormatProgramSeparators(t *testing.T) {
	out := FormatProgram([]Stmt{
		&CreateTable{Name: "a", Cols: []ColumnDef{{Name: "x", Type: sqltypes.Int}}},
		&CreateTable{Name: "b", Cols: []ColumnDef{{Name: "y", Type: sqltypes.Int}}},
	})
	if !strings.Contains(out, "GO\n") {
		t.Fatalf("missing batch separator:\n%s", out)
	}
}
