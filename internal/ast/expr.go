// Package ast defines the abstract syntax of the engine's SQL dialect:
// expressions, queries, procedural statements (the T-SQL-like language of
// the paper's Figure 1), and aggregate definitions (the paper's Figure 4
// template). It also provides printing, cloning, and traversal utilities
// used by the analysis and transformation packages.
package ast

import (
	"strings"

	"aggify/internal/sqltypes"
)

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	exprNode()
	String() string
}

// Literal is a constant value.
type Literal struct {
	Val sqltypes.Value
}

// ColRef is a (possibly qualified) column reference.
type ColRef struct {
	Table string // optional qualifier, lower-cased
	Name  string // column name, lower-cased
}

// VarRef references a procedural variable. Name keeps its sigil and is
// lower-cased: "@x" for user variables, "@@fetch_status" for the cursor
// status register.
type VarRef struct {
	Name string
}

// ParamRef is a positional parameter placeholder ("?") used by client-side
// prepared statements.
type ParamRef struct {
	Index int // 0-based position
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   sqltypes.BinaryOp
	L, R Expr
}

// UnaryExpr is negation (-) or logical NOT.
type UnaryExpr struct {
	Op byte // '-' or '!'
	E  Expr
}

// IsNullExpr is `E IS [NOT] NULL`.
type IsNullExpr struct {
	E      Expr
	Negate bool
}

// WhenClause is one WHEN...THEN arm of a CASE expression.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // may be nil (NULL)
}

// FuncCall invokes a scalar function, a built-in aggregate, or a custom
// aggregate; which one is resolved against the catalog at plan time.
type FuncCall struct {
	Name string // lower-cased
	Args []Expr
	Star bool // COUNT(*)
}

// Subquery embeds a SELECT usable as a scalar value or EXISTS predicate.
type Subquery struct {
	Query  *Select
	Exists bool // EXISTS(...) rather than scalar
}

// InExpr is `E [NOT] IN (list)` or `E [NOT] IN (subquery)`.
type InExpr struct {
	E      Expr
	List   []Expr
	Query  *Select
	Negate bool
}

// BetweenExpr is `E [NOT] BETWEEN Lo AND Hi`.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negate    bool
}

func (*Literal) exprNode()     {}
func (*ColRef) exprNode()      {}
func (*VarRef) exprNode()      {}
func (*ParamRef) exprNode()    {}
func (*BinExpr) exprNode()     {}
func (*UnaryExpr) exprNode()   {}
func (*IsNullExpr) exprNode()  {}
func (*CaseExpr) exprNode()    {}
func (*FuncCall) exprNode()    {}
func (*Subquery) exprNode()    {}
func (*InExpr) exprNode()      {}
func (*BetweenExpr) exprNode() {}

// Convenience constructors used heavily by tests and the transformer.

// Lit wraps a value as a literal expression.
func Lit(v sqltypes.Value) *Literal { return &Literal{Val: v} }

// IntLit returns an integer literal.
func IntLit(i int64) *Literal { return Lit(sqltypes.NewInt(i)) }

// StrLit returns a string literal.
func StrLit(s string) *Literal { return Lit(sqltypes.NewString(s)) }

// Col returns an unqualified column reference.
func Col(name string) *ColRef { return &ColRef{Name: strings.ToLower(name)} }

// QCol returns a qualified column reference.
func QCol(table, name string) *ColRef {
	return &ColRef{Table: strings.ToLower(table), Name: strings.ToLower(name)}
}

// Var returns a variable reference; the name should include its sigil.
func Var(name string) *VarRef { return &VarRef{Name: strings.ToLower(name)} }

// Bin builds a binary expression.
func Bin(op sqltypes.BinaryOp, l, r Expr) *BinExpr { return &BinExpr{Op: op, L: l, R: r} }

// Eq builds an equality comparison.
func Eq(l, r Expr) *BinExpr { return Bin(sqltypes.OpEq, l, r) }

// And conjoins expressions, dropping nils; returns nil when all are nil.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = Bin(sqltypes.OpAnd, out, e)
		}
	}
	return out
}
