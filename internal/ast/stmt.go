package ast

import (
	"strings"

	"aggify/internal/sqltypes"
)

// Stmt is the interface implemented by all statement nodes. All statement
// nodes are pointer types, so they can key identity maps in the analysis
// packages.
type Stmt interface {
	stmtNode()
}

// Block is a BEGIN...END sequence.
type Block struct {
	Stmts []Stmt
}

// DeclareVar declares a scalar variable with optional initializer:
// DECLARE @x INT = 3.
type DeclareVar struct {
	Name string // with '@' sigil, lower-cased
	Type sqltypes.Type
	Init Expr // may be nil (NULL)
}

// DeclareTable declares a table variable: DECLARE @t TABLE (a INT, ...).
type DeclareTable struct {
	Name string // with '@' sigil
	Cols []ColumnDef
}

// SetStmt assigns to one or more variables: SET @x = e, or the tuple
// destructuring form SET (@a, @b) = (SELECT Agg(...) ...) produced by the
// Aggify rewrite for loops with multiple live variables.
type SetStmt struct {
	Targets []string // with '@' sigils
	Value   Expr
}

// SetOption sets a session option: SET MAXDOP = 4. Options are plain
// identifiers (no sigil), distinguishing them from variable assignment.
type SetOption struct {
	Name  string // lower-cased option name, e.g. "maxdop"
	Value Expr
}

// IfStmt is IF cond stmt [ELSE stmt].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is WHILE cond stmt.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// ForStmt is the §8.1 counted loop: FOR (@i = 0; @i <= 100; @i = @i + 1) stmt.
// Aggify lifts it into a recursive-CTE cursor loop before transforming.
type ForStmt struct {
	InitVar  string // loop variable with sigil
	InitExpr Expr
	Cond     Expr
	PostVar  string
	PostExpr Expr
	Body     Stmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{}

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{}

// ReturnStmt returns from a function or procedure.
type ReturnStmt struct {
	Value Expr // may be nil
}

// DeclareCursor declares a static explicit cursor over a query.
type DeclareCursor struct {
	Name  string
	Query *Select
}

// OpenCursor executes the cursor query and materializes its results.
type OpenCursor struct {
	Name string
}

// CloseCursor closes an open cursor.
type CloseCursor struct {
	Name string
}

// DeallocateCursor releases a cursor and its worktable.
type DeallocateCursor struct {
	Name string
}

// FetchStmt is FETCH NEXT FROM cursor INTO @a, @b, ...
type FetchStmt struct {
	Cursor string
	Into   []string // variables with sigils
}

// QueryStmt is a standalone SELECT producing a result set.
type QueryStmt struct {
	Query *Select
}

// ExplainStmt is EXPLAIN [ANALYZE] <select>: it compiles the query and
// returns its physical plan; with ANALYZE it also executes the query and
// annotates each operator with runtime statistics.
type ExplainStmt struct {
	Analyze bool
	Query   *Select
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...),... or INSERT ... SELECT.
type InsertStmt struct {
	Table   string // includes '@' for table variables
	Columns []string
	Rows    [][]Expr // VALUES form
	Query   *Select  // SELECT form (exclusive with Rows)
}

// SetClause is one `col = expr` in an UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE t SET ... WHERE ...
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// DeleteStmt is DELETE FROM t WHERE ...
type DeleteStmt struct {
	Table string
	Where Expr
}

// TryCatch is BEGIN TRY ... END TRY BEGIN CATCH ... END CATCH.
type TryCatch struct {
	Try   Stmt
	Catch Stmt
}

// TxnOp is a transaction-control verb.
type TxnOp int

const (
	TxnBegin TxnOp = iota
	TxnCommit
	TxnRollback
)

func (op TxnOp) String() string {
	switch op {
	case TxnBegin:
		return "BEGIN TRANSACTION"
	case TxnCommit:
		return "COMMIT"
	case TxnRollback:
		return "ROLLBACK"
	}
	return "TXN?"
}

// TxnStmt is BEGIN TRANSACTION, COMMIT, or ROLLBACK: explicit transaction
// control over the session's MVCC state.
type TxnStmt struct {
	Op TxnOp
}

// PrintStmt emits a message (engine collects them per session).
type PrintStmt struct {
	E Expr
}

// ExecStmt invokes a stored procedure: EXEC p arg1, arg2.
type ExecStmt struct {
	Proc string
	Args []Expr
}

// TraceProcStmt profiles one procedure invocation: TRACE PROCEDURE p [args].
// The interpreter runs the procedure with per-statement profiling enabled
// and returns a result set attributing wall time and logical reads to each
// procedural statement, aggregated per cursor loop, with loops the Aggify
// analysis deems rewritable tagged aggify_candidate=true.
type TraceProcStmt struct {
	Proc string
	Args []Expr
}

// ExplainProcStmt is EXPLAIN PROCEDURE p: it compiles the procedure
// (without running it) and returns one row per body statement with the
// execution tier chosen for it — compiled or interpreted — and why.
type ExplainProcStmt struct {
	Proc string
}

// ColumnDef is a column in DDL.
type ColumnDef struct {
	Name string
	Type sqltypes.Type
}

// Param is a function/procedure/aggregate parameter, optionally defaulted.
type Param struct {
	Name    string // with '@' sigil
	Type    sqltypes.Type
	Default Expr // may be nil
}

// CreateTable is CREATE TABLE t (cols).
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

// CreateIndex is CREATE INDEX name ON table(column) [USING HASH|ORDERED].
type CreateIndex struct {
	Name    string
	Table   string
	Column  string
	Ordered bool
}

// CreateFunction is CREATE FUNCTION f(params) RETURNS type AS BEGIN ... END.
type CreateFunction struct {
	Name    string
	Params  []Param
	Returns sqltypes.Type
	Body    *Block
}

// CreateProcedure is CREATE PROCEDURE p(params) AS BEGIN ... END.
type CreateProcedure struct {
	Name   string
	Params []Param
	Body   *Block
}

// CreateAggregate defines a custom aggregate following the paper's Figure 4
// template: fields, Init, Accumulate (with parameters), Terminate.
type CreateAggregate struct {
	Name      string
	Params    []Param // Accumulate() parameters
	Returns   sqltypes.Type
	Fields    []ColumnDef // aggregate state, variables with sigils
	Init      *Block
	Accum     *Block
	Terminate *Block
	// Merge, when present, folds another instance's state into this one
	// (the contract's Merge step, enabling parallel aggregation). The other
	// instance's fields are visible as @other_<field> variables. Aggify
	// derives it for additive accumulate bodies; it may also be written by
	// hand as a MERGE section.
	Merge *Block
}

func (*Block) stmtNode()            {}
func (*DeclareVar) stmtNode()       {}
func (*DeclareTable) stmtNode()     {}
func (*SetStmt) stmtNode()          {}
func (*SetOption) stmtNode()        {}
func (*IfStmt) stmtNode()           {}
func (*WhileStmt) stmtNode()        {}
func (*ForStmt) stmtNode()          {}
func (*BreakStmt) stmtNode()        {}
func (*ContinueStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()       {}
func (*DeclareCursor) stmtNode()    {}
func (*OpenCursor) stmtNode()       {}
func (*CloseCursor) stmtNode()      {}
func (*DeallocateCursor) stmtNode() {}
func (*FetchStmt) stmtNode()        {}
func (*QueryStmt) stmtNode()        {}
func (*ExplainStmt) stmtNode()      {}
func (*InsertStmt) stmtNode()       {}
func (*UpdateStmt) stmtNode()       {}
func (*DeleteStmt) stmtNode()       {}
func (*TryCatch) stmtNode()         {}
func (*TxnStmt) stmtNode()          {}
func (*PrintStmt) stmtNode()        {}
func (*ExecStmt) stmtNode()         {}
func (*TraceProcStmt) stmtNode()    {}
func (*ExplainProcStmt) stmtNode()  {}
func (*CreateTable) stmtNode()      {}
func (*CreateIndex) stmtNode()      {}
func (*CreateFunction) stmtNode()   {}
func (*CreateProcedure) stmtNode()  {}
func (*CreateAggregate) stmtNode()  {}

// FetchStatusVar is the name of the cursor status register set by FETCH:
// 0 after a successful fetch, -1 at end of cursor.
const FetchStatusVar = "@@fetch_status"

// OtherFieldVar returns the variable name under which a MERGE body sees the
// other instance's copy of a field (e.g. "@total" → "@other_total").
func OtherFieldVar(field string) string {
	return "@other_" + strings.TrimPrefix(field, "@")
}
