// Package rubis models the RUBiS auction-site benchmark (the paper's [7])
// used in the Figure 9(b) client-program experiments: an e-commerce schema
// plus five application scenarios, each implemented twice — as the original
// client-side cursor loop over a remote query (the Figure 2 pattern), and
// as the Aggify-rewritten form that registers a custom aggregate and ships
// a single query (the Figure 8 pattern). Like the paper's Java programs,
// the rewritten forms were derived by applying Algorithm 1 by hand; the
// automated pipeline is exercised by the server-side workloads.
package rubis

import (
	"fmt"
	"math/rand"

	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Sizes scales the dataset; Users drives everything else.
type Sizes struct {
	Users    int
	Items    int
	Bids     int
	Comments int
}

// SizesFor derives RUBiS-like cardinalities from a scale knob.
func SizesFor(scale float64) Sizes {
	max1 := func(x float64) int {
		if x < 1 {
			return 1
		}
		return int(x)
	}
	return Sizes{
		Users:    max1(1_000 * scale),
		Items:    max1(3_000 * scale),
		Bids:     max1(30_000 * scale),
		Comments: max1(5_000 * scale),
	}
}

// Load generates the auction schema and data.
func Load(eng *engine.Engine, scale float64) error {
	rng := rand.New(rand.NewSource(7007))
	sz := SizesFor(scale)

	tx := eng.TxnMgr.Begin()
	defer tx.Rollback()

	users, err := eng.CreateTable("users", storage.NewSchema(
		storage.Col("u_id", sqltypes.Int),
		storage.Col("u_nickname", sqltypes.VarChar(20)),
		storage.Col("u_rating", sqltypes.Int),
		storage.Col("u_region", sqltypes.Int),
	))
	if err != nil {
		return err
	}
	items, err := eng.CreateTable("items", storage.NewSchema(
		storage.Col("i_id", sqltypes.Int),
		storage.Col("i_seller", sqltypes.Int),
		storage.Col("i_category", sqltypes.Int),
		storage.Col("i_name", sqltypes.VarChar(100)),
		storage.Col("i_initial_price", sqltypes.Float),
		storage.Col("i_quantity", sqltypes.Int),
		storage.Col("i_end_date", sqltypes.Date),
	))
	if err != nil {
		return err
	}
	bids, err := eng.CreateTable("bids", storage.NewSchema(
		storage.Col("b_id", sqltypes.Int),
		storage.Col("b_user_id", sqltypes.Int),
		storage.Col("b_item_id", sqltypes.Int),
		storage.Col("b_qty", sqltypes.Int),
		storage.Col("b_bid", sqltypes.Float),
		storage.Col("b_date", sqltypes.Date),
	))
	if err != nil {
		return err
	}
	comments, err := eng.CreateTable("comments", storage.NewSchema(
		storage.Col("c_id", sqltypes.Int),
		storage.Col("c_from", sqltypes.Int),
		storage.Col("c_to", sqltypes.Int),
		storage.Col("c_item_id", sqltypes.Int),
		storage.Col("c_rating", sqltypes.Int),
	))
	if err != nil {
		return err
	}

	base := sqltypes.MustDate("2020-01-01").Int()
	for i := 1; i <= sz.Users; i++ {
		if err := users.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("user%d", i)),
			sqltypes.NewInt(int64(rng.Intn(20) - 5)),
			sqltypes.NewInt(int64(1 + rng.Intn(50))),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= sz.Items; i++ {
		// Ten percent of items belong to the "power seller" (user 1),
		// mirroring RUBiS's skewed activity distribution.
		seller := int64(1 + rng.Intn(sz.Users))
		if rng.Intn(10) == 0 {
			seller = 1
		}
		if err := items.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(seller),
			sqltypes.NewInt(int64(1 + rng.Intn(20))),
			sqltypes.NewString(fmt.Sprintf("item %d", i)),
			sqltypes.NewFloat(float64(100+rng.Intn(10_000)) / 100),
			sqltypes.NewInt(int64(1 + rng.Intn(10))),
			sqltypes.NewDate(base + int64(rng.Intn(365))),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= sz.Bids; i++ {
		// A fifth of all bids hit the hot item and a fifth come from the
		// power bidder.
		bidder := int64(1 + rng.Intn(sz.Users))
		if rng.Intn(5) == 0 {
			bidder = 1
		}
		item := int64(1 + rng.Intn(sz.Items))
		if rng.Intn(5) == 0 {
			item = 1
		}
		if err := bids.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(bidder),
			sqltypes.NewInt(item),
			sqltypes.NewInt(int64(1 + rng.Intn(5))),
			sqltypes.NewFloat(float64(100+rng.Intn(50_000)) / 100),
			sqltypes.NewDate(base + int64(rng.Intn(365))),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= sz.Comments; i++ {
		to := int64(1 + rng.Intn(sz.Users))
		if rng.Intn(5) == 0 {
			to = 1
		}
		if err := comments.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(sz.Users))),
			sqltypes.NewInt(to),
			sqltypes.NewInt(int64(1 + rng.Intn(sz.Items))),
			sqltypes.NewInt(int64(rng.Intn(11) - 5)),
		}); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	for _, ix := range [][2]string{
		{"bids", "b_item_id"}, {"bids", "b_user_id"},
		{"comments", "c_to"}, {"items", "i_category"}, {"items", "i_seller"},
		{"users", "u_id"}, {"items", "i_id"},
	} {
		if err := eng.CreateIndex(ix[0], ix[1]); err != nil {
			return err
		}
	}
	return nil
}

// Scenario is one Figure 9(b) client program.
type Scenario struct {
	Name string
	// AggregateSetup registers the hand-derived custom aggregate (Algorithm
	// 1 applied to the client loop, as in the paper's Java experiments).
	AggregateSetup string
	// Original runs the client-side cursor loop; Aggified runs the
	// rewritten single-row query. Both return the computed value and the
	// number of loop iterations (rows the original iterates).
	Original func(conn *client.Conn, arg int64) (sqltypes.Value, int, error)
	Aggified func(conn *client.Conn, arg int64) (sqltypes.Value, error)
	// Arg picks the scenario argument for a dataset scale.
	Arg func(sz Sizes) int64
}

// Scenarios returns the five client programs.
func Scenarios() []*Scenario {
	return []*Scenario{
		viewBidHistory(),
		userRating(),
		categoryStats(),
		buyerSpend(),
		sellerOpenValue(),
	}
}

// viewBidHistory computes the maximum bid and bid count for one item
// (RUBiS ViewBidHistory).
func viewBidHistory() *Scenario {
	return &Scenario{
		Name: "ViewBidHistory",
		AggregateSetup: `
create aggregate MaxBidAgg(@bid float, @qty int) returns tuple as
begin
  fields (@mx float, @cnt int, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @mx = 0; set @cnt = 0; set @isInitialized = true;
    end
    if @bid > @mx set @mx = @bid;
    set @cnt = @cnt + 1;
  end
  terminate begin return (select @mx, @cnt); end
end`,
		Original: func(conn *client.Conn, item int64) (sqltypes.Value, int, error) {
			stmt, err := conn.Prepare("select b_bid, b_qty from bids where b_item_id = ?")
			if err != nil {
				return sqltypes.Null, 0, err
			}
			rs, err := stmt.Query(sqltypes.NewInt(item))
			if err != nil {
				return sqltypes.Null, 0, err
			}
			defer rs.Close()
			mx, cnt := 0.0, 0
			for rs.Next() {
				if b := rs.Float64("b_bid"); b > mx {
					mx = b
				}
				cnt++
			}
			return sqltypes.NewFloat(mx*1000 + float64(cnt)), cnt, nil
		},
		Aggified: func(conn *client.Conn, item int64) (sqltypes.Value, error) {
			stmt, err := conn.Prepare("select MaxBidAgg(q.b_bid, q.b_qty) from (select b_bid, b_qty from bids where b_item_id = ?) q")
			if err != nil {
				return sqltypes.Null, err
			}
			row, err := stmt.QueryRow(sqltypes.NewInt(item))
			if err != nil {
				return sqltypes.Null, err
			}
			t := row[0].Tuple()
			mx, _ := t[0].AsFloat()
			cnt, _ := t[1].AsInt()
			return sqltypes.NewFloat(mx*1000 + float64(cnt)), nil
		},
		Arg: func(Sizes) int64 { return 1 }, // the hot item
	}
}

// userRating sums comment ratings for one user (RUBiS ViewUserInfo).
func userRating() *Scenario {
	return &Scenario{
		Name: "ViewUserInfo",
		AggregateSetup: `
create aggregate RatingAgg(@r int) returns int as
begin
  fields (@sum int, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @sum = 0; set @isInitialized = true;
    end
    if @r > 0 set @sum = @sum + @r;
    else set @sum = @sum + @r * 2;
  end
  terminate begin return @sum; end
end`,
		Original: func(conn *client.Conn, user int64) (sqltypes.Value, int, error) {
			stmt, err := conn.Prepare("select c_rating from comments where c_to = ?")
			if err != nil {
				return sqltypes.Null, 0, err
			}
			rs, err := stmt.Query(sqltypes.NewInt(user))
			if err != nil {
				return sqltypes.Null, 0, err
			}
			defer rs.Close()
			sum := int64(0)
			n := 0
			for rs.Next() {
				r := rs.Int64("c_rating")
				if r > 0 {
					sum += r
				} else {
					sum += r * 2
				}
				n++
			}
			return sqltypes.NewInt(sum), n, nil
		},
		Aggified: func(conn *client.Conn, user int64) (sqltypes.Value, error) {
			stmt, err := conn.Prepare("select RatingAgg(q.c_rating) from (select c_rating from comments where c_to = ?) q")
			if err != nil {
				return sqltypes.Null, err
			}
			row, err := stmt.QueryRow(sqltypes.NewInt(user))
			if err != nil {
				return sqltypes.Null, err
			}
			if row[0].IsNull() {
				return sqltypes.NewInt(0), nil
			}
			return row[0], nil
		},
		Arg: func(Sizes) int64 { return 1 }, // the most-reviewed user
	}
}

// categoryStats computes count and average initial price of items in a
// category (RUBiS SearchItemsByCategory).
func categoryStats() *Scenario {
	return &Scenario{
		Name: "SearchItemsByCategory",
		AggregateSetup: `
create aggregate CatStatsAgg(@price float) returns tuple as
begin
  fields (@n int, @sum float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @n = 0; set @sum = 0; set @isInitialized = true;
    end
    set @n = @n + 1;
    set @sum = @sum + @price;
  end
  terminate begin return (select @n, @sum); end
end`,
		Original: func(conn *client.Conn, cat int64) (sqltypes.Value, int, error) {
			stmt, err := conn.Prepare("select i_initial_price from items where i_category = ?")
			if err != nil {
				return sqltypes.Null, 0, err
			}
			rs, err := stmt.Query(sqltypes.NewInt(cat))
			if err != nil {
				return sqltypes.Null, 0, err
			}
			defer rs.Close()
			n, sum := 0, 0.0
			for rs.Next() {
				sum += rs.Float64("i_initial_price")
				n++
			}
			if n == 0 {
				return sqltypes.NewFloat(0), 0, nil
			}
			return sqltypes.NewFloat(sum / float64(n)), n, nil
		},
		Aggified: func(conn *client.Conn, cat int64) (sqltypes.Value, error) {
			stmt, err := conn.Prepare("select CatStatsAgg(q.i_initial_price) from (select i_initial_price from items where i_category = ?) q")
			if err != nil {
				return sqltypes.Null, err
			}
			row, err := stmt.QueryRow(sqltypes.NewInt(cat))
			if err != nil {
				return sqltypes.Null, err
			}
			if row[0].IsNull() {
				return sqltypes.NewFloat(0), nil
			}
			t := row[0].Tuple()
			n, _ := t[0].AsInt()
			sum, _ := t[1].AsFloat()
			if n == 0 {
				return sqltypes.NewFloat(0), nil
			}
			return sqltypes.NewFloat(sum / float64(n)), nil
		},
		Arg: func(Sizes) int64 { return 7 },
	}
}

// buyerSpend totals a user's winning-size bids (RUBiS AboutMe).
func buyerSpend() *Scenario {
	return &Scenario{
		Name: "AboutMe-BuyerSpend",
		AggregateSetup: `
create aggregate SpendAgg(@bid float, @qty int) returns float as
begin
  fields (@total float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @total = 0; set @isInitialized = true;
    end
    set @total = @total + @bid * @qty;
  end
  terminate begin return @total; end
end`,
		Original: func(conn *client.Conn, user int64) (sqltypes.Value, int, error) {
			stmt, err := conn.Prepare("select b_bid, b_qty from bids where b_user_id = ?")
			if err != nil {
				return sqltypes.Null, 0, err
			}
			rs, err := stmt.Query(sqltypes.NewInt(user))
			if err != nil {
				return sqltypes.Null, 0, err
			}
			defer rs.Close()
			total := 0.0
			n := 0
			for rs.Next() {
				total += rs.Float64("b_bid") * float64(rs.Int64("b_qty"))
				n++
			}
			return sqltypes.NewFloat(total), n, nil
		},
		Aggified: func(conn *client.Conn, user int64) (sqltypes.Value, error) {
			stmt, err := conn.Prepare("select SpendAgg(q.b_bid, q.b_qty) from (select b_bid, b_qty from bids where b_user_id = ?) q")
			if err != nil {
				return sqltypes.Null, err
			}
			row, err := stmt.QueryRow(sqltypes.NewInt(user))
			if err != nil {
				return sqltypes.Null, err
			}
			if row[0].IsNull() {
				return sqltypes.NewFloat(0), nil
			}
			return row[0], nil
		},
		Arg: func(Sizes) int64 { return 1 }, // the power bidder
	}
}

// sellerOpenValue sums the initial prices of one seller's multi-quantity
// items (RUBiS AboutMe, seller section).
func sellerOpenValue() *Scenario {
	return &Scenario{
		Name: "AboutMe-SellerValue",
		AggregateSetup: `
create aggregate SellerValueAgg(@price float, @qty int) returns float as
begin
  fields (@v float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @v = 0; set @isInitialized = true;
    end
    if @qty > 1 set @v = @v + @price * @qty;
    else set @v = @v + @price;
  end
  terminate begin return @v; end
end`,
		Original: func(conn *client.Conn, seller int64) (sqltypes.Value, int, error) {
			stmt, err := conn.Prepare("select i_initial_price, i_quantity from items where i_seller = ?")
			if err != nil {
				return sqltypes.Null, 0, err
			}
			rs, err := stmt.Query(sqltypes.NewInt(seller))
			if err != nil {
				return sqltypes.Null, 0, err
			}
			defer rs.Close()
			v := 0.0
			n := 0
			for rs.Next() {
				price := rs.Float64("i_initial_price")
				qty := rs.Int64("i_quantity")
				if qty > 1 {
					v += price * float64(qty)
				} else {
					v += price
				}
				n++
			}
			return sqltypes.NewFloat(v), n, nil
		},
		Aggified: func(conn *client.Conn, seller int64) (sqltypes.Value, error) {
			stmt, err := conn.Prepare("select SellerValueAgg(q.i_initial_price, q.i_quantity) from (select i_initial_price, i_quantity from items where i_seller = ?) q")
			if err != nil {
				return sqltypes.Null, err
			}
			row, err := stmt.QueryRow(sqltypes.NewInt(seller))
			if err != nil {
				return sqltypes.Null, err
			}
			if row[0].IsNull() {
				return sqltypes.NewFloat(0), nil
			}
			return row[0], nil
		},
		Arg: func(Sizes) int64 { return 1 }, // the power seller
	}
}
