package applicability

import "testing"

// TestTable1 pins the corpus counts against the paper's Table 1 targets:
// RUBiS and RUBBoS at full scale, Adempiere as a ~1/3-scale subset with the
// same cursor-loop share.
func TestTable1(t *testing.T) {
	reports, err := ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("apps = %d", len(reports))
	}
	byApp := map[string]*Report{}
	for _, r := range reports {
		byApp[r.App] = r
	}

	rubis := byApp["rubis"]
	if rubis.WhileLoops != 16 || rubis.CursorLoops != 14 || rubis.Aggifiable != 14 {
		t.Fatalf("rubis = %d/%d/%d, want 16/14/14 (reasons: %v)",
			rubis.WhileLoops, rubis.CursorLoops, rubis.Aggifiable, rubis.Reasons)
	}
	if share := rubis.CursorShare(); share < 87 || share > 88 {
		t.Fatalf("rubis cursor share = %.1f%%, want 87.5%%", share)
	}

	rubbos := byApp["rubbos"]
	if rubbos.WhileLoops != 41 || rubbos.CursorLoops != 14 || rubbos.Aggifiable != 14 {
		t.Fatalf("rubbos = %d/%d/%d, want 41/14/14 (reasons: %v)",
			rubbos.WhileLoops, rubbos.CursorLoops, rubbos.Aggifiable, rubbos.Reasons)
	}

	adem := byApp["adempiere"]
	if share := adem.CursorShare(); share < 80 || share > 90 {
		t.Fatalf("adempiere cursor share = %.1f%%, want ~85.8%%", share)
	}
	if adem.Aggifiable*10 < adem.CursorLoops*7 {
		t.Fatalf("adempiere aggifiable = %d of %d cursor loops, want >70%%",
			adem.Aggifiable, adem.CursorLoops)
	}
	if len(adem.Reasons) == 0 {
		t.Fatal("adempiere must have rejection reasons (DML, EXEC, result sets)")
	}
}

// TestWidenedCoverage pins the widened scan and the compile-tier meter:
// the WHILE lift and RETURN lowering must strictly beat the baseline on
// rubbos and adempiere (the top rejection categories), and nearly every
// corpus leaf statement must compile.
func TestWidenedCoverage(t *testing.T) {
	reports, err := ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]*Report{}
	for _, r := range reports {
		byApp[r.App] = r
	}

	rubis := byApp["rubis"]
	if rubis.WidenedAggifiable != 15 {
		t.Fatalf("rubis widened = %d, want 15 (codes: %v)", rubis.WidenedAggifiable, rubis.ReasonCodes)
	}
	rubbos := byApp["rubbos"]
	if rubbos.WidenedAggifiable != 27 {
		t.Fatalf("rubbos widened = %d, want 27 — the WHILE-over-variable lift is the whole gap (codes: %v)",
			rubbos.WidenedAggifiable, rubbos.ReasonCodes)
	}
	adem := byApp["adempiere"]
	if adem.WidenedAggifiable != 30 {
		t.Fatalf("adempiere widened = %d, want 30 (codes: %v)", adem.WidenedAggifiable, adem.ReasonCodes)
	}
	// The remaining adempiere rejections carry stable codes.
	for code, want := range map[string]int{
		"persistent_dml": 3,
		"proc_call":      1,
		"result_set":     1,
	} {
		if got := adem.ReasonCodes[code]; got != want {
			t.Fatalf("adempiere reason %s = %d, want %d (all: %v)", code, got, want, adem.ReasonCodes)
		}
	}
	// Every app's scan keys unmatched_pattern even at zero, so dashboards
	// and the snapshot always carry the full code set.
	for _, r := range reports {
		if _, ok := r.ReasonCodes["unmatched_pattern"]; !ok {
			t.Fatalf("%s: unmatched_pattern key missing: %v", r.App, r.ReasonCodes)
		}
	}

	// Compile-tier coverage: rubis and rubbos fully compile; adempiere has
	// exactly two partially-compiled modules and no interpreter-only ones.
	for _, tc := range []struct {
		app                  string
		full, partial, total int
		compiled             int
	}{
		{"rubis", 16, 0, 163, 163},
		{"rubbos", 36, 0, 271, 271},
		{"adempiere", 35, 2, 375, 373},
	} {
		r := byApp[tc.app]
		if r.FullyCompiled != tc.full || r.PartiallyCompiled != tc.partial ||
			r.InterpretedOnly != 0 || r.TotalStmts != tc.total || r.CompiledStmts != tc.compiled {
			t.Fatalf("%s coverage = full=%d partial=%d interp=%d stmts=%d/%d, want full=%d partial=%d interp=0 stmts=%d/%d",
				tc.app, r.FullyCompiled, r.PartiallyCompiled, r.InterpretedOnly, r.CompiledStmts, r.TotalStmts,
				tc.full, tc.partial, tc.compiled, tc.total)
		}
	}
}

func TestScanUnknownApp(t *testing.T) {
	if _, err := ScanApp("nonexistent"); err == nil {
		t.Fatal("unknown app should error")
	}
}
