package applicability

import "testing"

// TestTable1 pins the corpus counts against the paper's Table 1 targets:
// RUBiS and RUBBoS at full scale, Adempiere as a ~1/3-scale subset with the
// same cursor-loop share.
func TestTable1(t *testing.T) {
	reports, err := ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("apps = %d", len(reports))
	}
	byApp := map[string]*Report{}
	for _, r := range reports {
		byApp[r.App] = r
	}

	rubis := byApp["rubis"]
	if rubis.WhileLoops != 16 || rubis.CursorLoops != 14 || rubis.Aggifiable != 14 {
		t.Fatalf("rubis = %d/%d/%d, want 16/14/14 (reasons: %v)",
			rubis.WhileLoops, rubis.CursorLoops, rubis.Aggifiable, rubis.Reasons)
	}
	if share := rubis.CursorShare(); share < 87 || share > 88 {
		t.Fatalf("rubis cursor share = %.1f%%, want 87.5%%", share)
	}

	rubbos := byApp["rubbos"]
	if rubbos.WhileLoops != 41 || rubbos.CursorLoops != 14 || rubbos.Aggifiable != 14 {
		t.Fatalf("rubbos = %d/%d/%d, want 41/14/14 (reasons: %v)",
			rubbos.WhileLoops, rubbos.CursorLoops, rubbos.Aggifiable, rubbos.Reasons)
	}

	adem := byApp["adempiere"]
	if share := adem.CursorShare(); share < 80 || share > 90 {
		t.Fatalf("adempiere cursor share = %.1f%%, want ~85.8%%", share)
	}
	if adem.Aggifiable*10 < adem.CursorLoops*7 {
		t.Fatalf("adempiere aggifiable = %d of %d cursor loops, want >70%%",
			adem.Aggifiable, adem.CursorLoops)
	}
	if len(adem.Reasons) == 0 {
		t.Fatal("adempiere must have rejection reasons (DML, EXEC, result sets)")
	}
}

func TestScanUnknownApp(t *testing.T) {
	if _, err := ScanApp("nonexistent"); err == nil {
		t.Fatal("unknown app should error")
	}
}
