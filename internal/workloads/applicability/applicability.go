// Package applicability implements the paper's §10.2 analysis: scan an
// application's procedures, count while loops and cursor loops, and check
// how many cursor loops satisfy Aggify's preconditions — by actually
// running the transformation on every module, so "Aggify-able" means
// "Aggify transformed it", not "a heuristic said yes".
package applicability

import (
	"fmt"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/parser"
	"aggify/internal/workloads/corpus"
)

// Report is one application's Table 1 row.
type Report struct {
	App         string
	Files       int
	Modules     int // functions + procedures scanned
	WhileLoops  int
	CursorLoops int
	Aggifiable  int
	// Reasons tallies why cursor loops were rejected.
	Reasons map[string]int
}

// CursorShare returns the cursor-loop percentage of all while loops.
func (r *Report) CursorShare() float64 {
	if r.WhileLoops == 0 {
		return 0
	}
	return 100 * float64(r.CursorLoops) / float64(r.WhileLoops)
}

// ScanApp analyzes one corpus application.
func ScanApp(app string) (*Report, error) {
	sources, err := corpus.Sources(app)
	if err != nil {
		return nil, err
	}
	rep := &Report{App: app, Reasons: map[string]int{}}
	for _, src := range sources {
		rep.Files++
		stmts, err := parser.Parse(src.SQL)
		if err != nil {
			return nil, fmt.Errorf("applicability: %s/%s: %w", app, src.Name, err)
		}
		for _, s := range stmts {
			switch def := s.(type) {
			case *ast.CreateFunction:
				rep.Modules++
				if err := rep.scanModule(def.Name, def.Params, def.Body, func() (*core.Result, error) {
					_, res, err := core.TransformFunction(def, core.Options{})
					return res, err
				}); err != nil {
					return nil, fmt.Errorf("applicability: %s/%s %s: %w", app, src.Name, def.Name, err)
				}
			case *ast.CreateProcedure:
				rep.Modules++
				if err := rep.scanModule(def.Name, def.Params, def.Body, func() (*core.Result, error) {
					_, res, err := core.TransformProcedure(def, core.Options{})
					return res, err
				}); err != nil {
					return nil, fmt.Errorf("applicability: %s/%s %s: %w", app, src.Name, def.Name, err)
				}
			}
		}
	}
	return rep, nil
}

func (rep *Report) scanModule(name string, params []ast.Param, body *ast.Block, transform func() (*core.Result, error)) error {
	// Count loops syntactically.
	ast.WalkStmt(body, func(s ast.Stmt) bool {
		if w, ok := s.(*ast.WhileStmt); ok {
			rep.WhileLoops++
			if ast.VarsInExpr(w.Cond)[ast.FetchStatusVar] {
				rep.CursorLoops++
			}
		}
		return true
	})
	// Count transformable loops by transforming.
	res, err := transform()
	if err != nil {
		return err
	}
	rep.Aggifiable += len(res.Loops)
	for _, skip := range res.Skipped {
		rep.Reasons[skip.Error()]++
	}
	return nil
}

// ScanAll produces the full Table 1.
func ScanAll() ([]*Report, error) {
	var out []*Report
	for _, app := range corpus.Apps() {
		rep, err := ScanApp(app)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
