// Package applicability implements the paper's §10.2 analysis: scan an
// application's procedures, count while loops and cursor loops, and check
// how many cursor loops satisfy Aggify's preconditions — by actually
// running the transformation on every module, so "Aggify-able" means
// "Aggify transformed it", not "a heuristic said yes".
package applicability

import (
	"fmt"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/workloads/corpus"
)

// Report is one application's Table 1 row, extended with the widened
// rewrite scan and the compile-tier coverage meter.
type Report struct {
	App         string `json:"app"`
	Files       int    `json:"files"`
	Modules     int    `json:"modules"` // functions + procedures scanned
	WhileLoops  int    `json:"while_loops"`
	CursorLoops int    `json:"cursor_loops"`
	Aggifiable  int    `json:"aggifiable"`
	// Reasons tallies why cursor loops were rejected (base scan, full
	// error strings).
	Reasons map[string]int `json:"-"`

	// WidenedAggifiable counts loops the transformation rewrites under
	// WidenedOptions — WHILE-over-variable lifting and RETURN-in-loop
	// lowering enabled — including cursor loops those rewrites create.
	WidenedAggifiable int `json:"widened_aggifiable"`
	// ReasonCodes tallies widened-scan rejections by stable reason code;
	// loops the pattern matcher never attempted count under
	// unmatched_pattern.
	ReasonCodes map[string]int `json:"reason_codes"`

	// Compile-tier coverage over module bodies (static classification:
	// which statements the routine compiler runs natively vs through the
	// interpreter bridge). Leaf statements only; containers describe
	// control flow.
	FullyCompiled     int `json:"fully_compiled"`     // modules with every leaf compiled
	PartiallyCompiled int `json:"partially_compiled"` // modules with a mix
	InterpretedOnly   int `json:"interpreted_only"`   // modules with no compiled leaves
	TotalStmts        int `json:"total_stmts"`
	CompiledStmts     int `json:"compiled_stmts"`
}

// CursorShare returns the cursor-loop percentage of all while loops.
func (r *Report) CursorShare() float64 {
	if r.WhileLoops == 0 {
		return 0
	}
	return 100 * float64(r.CursorLoops) / float64(r.WhileLoops)
}

// ScanApp analyzes one corpus application.
func ScanApp(app string) (*Report, error) {
	sources, err := corpus.Sources(app)
	if err != nil {
		return nil, err
	}
	rep := &Report{App: app, Reasons: map[string]int{}, ReasonCodes: map[string]int{}}
	for _, src := range sources {
		rep.Files++
		stmts, err := parser.Parse(src.SQL)
		if err != nil {
			return nil, fmt.Errorf("applicability: %s/%s: %w", app, src.Name, err)
		}
		for _, s := range stmts {
			switch def := s.(type) {
			case *ast.CreateFunction:
				rep.Modules++
				if err := rep.scanModule(def.Name, def.Params, def.Body, func(opts core.Options) (*core.Result, error) {
					_, res, err := core.TransformFunction(def, opts)
					return res, err
				}); err != nil {
					return nil, fmt.Errorf("applicability: %s/%s %s: %w", app, src.Name, def.Name, err)
				}
			case *ast.CreateProcedure:
				rep.Modules++
				if err := rep.scanModule(def.Name, def.Params, def.Body, func(opts core.Options) (*core.Result, error) {
					_, res, err := core.TransformProcedure(def, opts)
					return res, err
				}); err != nil {
					return nil, fmt.Errorf("applicability: %s/%s %s: %w", app, src.Name, def.Name, err)
				}
			}
		}
	}
	return rep, nil
}

func (rep *Report) scanModule(name string, params []ast.Param, body *ast.Block, transform func(core.Options) (*core.Result, error)) error {
	// Count loops syntactically.
	ast.WalkStmt(body, func(s ast.Stmt) bool {
		if w, ok := s.(*ast.WhileStmt); ok {
			rep.WhileLoops++
			if ast.VarsInExpr(w.Cond)[ast.FetchStatusVar] {
				rep.CursorLoops++
			}
		}
		return true
	})
	// Count transformable loops by transforming — first with the paper's
	// baseline preconditions (Table 1 parity), then with the widened
	// rewrites enabled.
	res, err := transform(core.Options{})
	if err != nil {
		return err
	}
	rep.Aggifiable += len(res.Loops)
	for _, skip := range res.Skipped {
		rep.Reasons[skip.Error()]++
	}
	wres, err := transform(core.WidenedOptions())
	if err != nil {
		return err
	}
	rep.WidenedAggifiable += len(wres.Loops)
	for _, skip := range wres.Skipped {
		code := core.ReasonUnmatchedPattern
		var na *core.NotAggifiableError
		if asNotAggifiable(skip, &na) {
			code = na.Code
		}
		rep.ReasonCodes[string(code)]++
	}
	rep.ReasonCodes[string(core.ReasonUnmatchedPattern)] += len(core.FindUnmatchedCursorWhiles(body))

	// Compile-tier coverage: statically classify the (untransformed) body
	// the way the routine compiler would.
	compiled, total := interp.TierCoverage(interp.ClassifyBody(body))
	rep.TotalStmts += total
	rep.CompiledStmts += compiled
	switch {
	case total == 0 || compiled == total:
		rep.FullyCompiled++
	case compiled == 0:
		rep.InterpretedOnly++
	default:
		rep.PartiallyCompiled++
	}
	return nil
}

// asNotAggifiable unwraps err into a NotAggifiableError when possible.
func asNotAggifiable(err error, target **core.NotAggifiableError) bool {
	if na, ok := err.(*core.NotAggifiableError); ok {
		*target = na
		return true
	}
	return false
}

// CompiledShare returns the compiled-leaf percentage across all modules.
func (r *Report) CompiledShare() float64 {
	if r.TotalStmts == 0 {
		return 0
	}
	return 100 * float64(r.CompiledStmts) / float64(r.TotalStmts)
}

// ScanAll produces the full Table 1.
func ScanAll() ([]*Report, error) {
	var out []*Report
	for _, app := range corpus.Apps() {
		rep, err := ScanApp(app)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
