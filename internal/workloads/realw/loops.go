package realw

import (
	"fmt"
	"strings"
)

// Loop is one of the paper's customer-workload loops L1–L8 (Figure 9(c)).
type Loop struct {
	ID       string
	Workload string // W1, W2, W3
	Desc     string
	// Setup defines the cursor-loop UDF(s).
	Setup string
	// Funcs lists the UDF names (transformation targets).
	Funcs []string
	// driver invokes the loop; limit caps the iteration count where the
	// loop supports sweeping (L1 for Figure 11).
	driver func(limit int) string
	// Small marks the paper's low-iteration, temp-table-writing loops
	// (L2, L6) that show little or no gain.
	Small bool
	// Nested marks the nested cursor loop (L8).
	Nested bool
}

// Driver renders the invoking statement; limit <= 0 means the natural size.
func (l *Loop) Driver(limit int) string { return l.driver(limit) }

// Loops returns L1–L8.
func Loops() []*Loop {
	return []*Loop{l1(), l2(), l3(), l4(), l5(), l6(), l7(), l8()}
}

// LoopByID returns one loop.
func LoopByID(id string) (*Loop, bool) {
	for _, l := range Loops() {
		if strings.EqualFold(l.ID, id) {
			return l, true
		}
	}
	return nil, false
}

// l1 (W1): engagement score over the whale account's activities, with
// per-type weighting — the Figure 11 scalability loop.
func l1() *Loop {
	return &Loop{
		ID: "L1", Workload: "W1",
		Desc: "CRM engagement score over an account's activity stream",
		Setup: `
create function engagementScore(@acct int, @cap int) returns float as
begin
  declare @type int;
  declare @minutes int;
  declare @s float;
  declare @score float = 0;
  declare @calls int = 0;
  declare c cursor for
    select act_type, act_minutes, act_score from activities
    where act_account = @acct and act_seq <= @cap;
  open c;
  fetch next from c into @type, @minutes, @s;
  while @@fetch_status = 0
  begin
    if @type = 0
    begin
      set @score = @score + @s * 2 + @minutes * 0.1;
      set @calls = @calls + 1;
    end
    else if @type = 1
      set @score = @score + @s;
    else if @type = 2
      set @score = @score + @s * 0.5;
    else
      set @score = @score - 1;
    fetch next from c into @type, @minutes, @s;
  end
  close c;
  deallocate c;
  return @score + @calls;
end`,
		Funcs: []string{"engagementscore"},
		driver: func(limit int) string {
			if limit <= 0 {
				limit = 1 << 30
			}
			return fmt.Sprintf("select engagementScore(1, %d) as score", limit)
		},
	}
}

// l2 (W2): a small loop that stages one machine's config entries into a
// temp table — the paper's no-gain case (few iterations, inserts).
func l2() *Loop {
	return &Loop{
		ID: "L2", Workload: "W2", Small: true,
		Desc: "stage one machine's config entries into a temp table",
		Setup: `
create function stageConfig(@machine int) returns int as
begin
  declare @k varchar(40);
  declare @v varchar(60);
  declare @n int = 0;
  declare c cursor for
    select ce_key, ce_value from config_entries where ce_machine = @machine;
  open c;
  fetch next from c into @k, @v;
  while @@fetch_status = 0
  begin
    insert into #staging values (@k, @v);
    set @n = @n + 1;
    fetch next from c into @k, @v;
  end
  close c;
  deallocate c;
  return @n;
end`,
		Funcs: []string{"stageconfig"},
		driver: func(int) string {
			return "select stageConfig(17) as staged"
		},
	}
}

// l3 (W1): pipeline value by stage across a segment's opportunities.
func l3() *Loop {
	return &Loop{
		ID: "L3", Workload: "W1",
		Desc: "weighted pipeline value over a segment's opportunities",
		Setup: `
create function pipelineValue(@segment int) returns float as
begin
  declare @stage int;
  declare @value float;
  declare @total float = 0;
  declare c cursor for
    select o_stage, o_value from opportunities, accounts
    where o_account = a_id and a_segment = @segment;
  open c;
  fetch next from c into @stage, @value;
  while @@fetch_status = 0
  begin
    if @stage >= 5
      set @total = @total + @value;
    else if @stage >= 3
      set @total = @total + @value * 0.6;
    else
      set @total = @total + @value * 0.1;
    fetch next from c into @stage, @value;
  end
  close c;
  deallocate c;
  return @total;
end`,
		Funcs: []string{"pipelinevalue"},
		driver: func(int) string {
			return "select pipelineValue(2) as pipeline"
		},
	}
}

// l4 (W3): per-route delay analysis over an ORDER BY cursor (exercises the
// Eq. 6 order-enforced rewrite on a real-workload loop).
func l4() *Loop {
	return &Loop{
		ID: "L4", Workload: "W3",
		Desc: "cumulative delay along shipment legs (ordered loop)",
		Setup: `
create function routeDelay(@route int) returns float as
begin
  declare @planned float;
  declare @actual float;
  declare @delay float = 0;
  declare @worst float = 0;
  declare c cursor for
    select l_planned_hours, l_actual_hours
    from legs, shipments
    where l_shipment = s_id and s_route = @route
    order by l_shipment, l_seq;
  open c;
  fetch next from c into @planned, @actual;
  while @@fetch_status = 0
  begin
    if @actual > @planned
    begin
      set @delay = @delay + (@actual - @planned);
      if @actual - @planned > @worst
        set @worst = @actual - @planned;
    end
    fetch next from c into @planned, @actual;
  end
  close c;
  deallocate c;
  return @delay + @worst * 1000;
end`,
		Funcs: []string{"routedelay"},
		driver: func(int) string {
			return "select routeDelay(9) as delay"
		},
	}
}

// l5 (W2): drift detection — the loop body runs a query per row (§4.2's
// SELECT-inside-loop support).
func l5() *Loop {
	return &Loop{
		ID: "L5", Workload: "W2",
		Desc: "config drift count with a per-row lookup query",
		Setup: `
create function driftCount(@env int) returns int as
begin
  declare @m int;
  declare @latest int;
  declare @stale int;
  declare @n int = 0;
  declare c cursor for
    select m_id from machines where m_env = @env;
  open c;
  fetch next from c into @m;
  while @@fetch_status = 0
  begin
    set @latest = (select max(v_num) from versions where v_machine = @m);
    set @stale = (select count(*) from config_entries
                  where ce_machine = @m and ce_version < @latest - 2);
    if @stale > 0
      set @n = @n + 1;
    fetch next from c into @m;
  end
  close c;
  deallocate c;
  return @n;
end`,
		Funcs: []string{"driftcount"},
		driver: func(int) string {
			return "select driftCount(1) as drifted"
		},
	}
}

// l6 (W2): another small temp-table loop (the paper's second no-gain case).
func l6() *Loop {
	return &Loop{
		ID: "L6", Workload: "W2", Small: true,
		Desc: "record a machine's version history into a temp table",
		Setup: `
create function recordVersions(@machine int) returns int as
begin
  declare @num int;
  declare @n int = 0;
  declare c cursor for
    select v_num from versions where v_machine = @machine;
  open c;
  fetch next from c into @num;
  while @@fetch_status = 0
  begin
    insert into #drift values (@machine, @num);
    set @n = @n + 1;
    fetch next from c into @num;
  end
  close c;
  deallocate c;
  return @n;
end`,
		Funcs: []string{"recordversions"},
		driver: func(int) string {
			return "select recordVersions(5) as recorded"
		},
	}
}

// l7 (W3): revenue per ton over a route range.
func l7() *Loop {
	return &Loop{
		ID: "L7", Workload: "W3",
		Desc: "revenue-per-ton over a route range",
		Setup: `
create function revenuePerTon(@lo int, @hi int) returns float as
begin
  declare @w float;
  declare @r float;
  declare @weight float = 0;
  declare @revenue float = 0;
  declare c cursor for
    select s_weight, s_revenue from shipments
    where s_route >= @lo and s_route <= @hi;
  open c;
  fetch next from c into @w, @r;
  while @@fetch_status = 0
  begin
    set @weight = @weight + @w;
    set @revenue = @revenue + @r;
    fetch next from c into @w, @r;
  end
  close c;
  deallocate c;
  if @weight = 0 return 0;
  return @revenue / @weight;
end`,
		Funcs: []string{"revenueperton"},
		driver: func(int) string {
			return "select revenuePerTon(1, 25) as rpt"
		},
	}
}

// l8 (W1): nested cursor loops — per account, an inner loop over its
// opportunities (the paper's L8, transformed innermost-first per §6.3.1).
func l8() *Loop {
	return &Loop{
		ID: "L8", Workload: "W1", Nested: true,
		Desc: "nested loop: per-account opportunity scoring",
		Setup: `
create function segmentScore(@segment int) returns float as
begin
  declare @acct int;
  declare @stage int;
  declare @value float;
  declare @acctTotal float;
  declare @grand float = 0;
  declare outerc cursor for
    select a_id from accounts where a_segment = @segment;
  open outerc;
  fetch next from outerc into @acct;
  while @@fetch_status = 0
  begin
    set @acctTotal = 0;
    declare innerc cursor for
      select o_stage, o_value from opportunities where o_account = @acct;
    open innerc;
    fetch next from innerc into @stage, @value;
    while @@fetch_status = 0
    begin
      if @stage > 3
        set @acctTotal = @acctTotal + @value;
      fetch next from innerc into @stage, @value;
    end
    close innerc;
    deallocate innerc;
    if @acctTotal > 10000
      set @grand = @grand + @acctTotal;
    fetch next from outerc into @acct;
  end
  close outerc;
  deallocate outerc;
  return @grand;
end`,
		Funcs: []string{"segmentscore"},
		driver: func(int) string {
			return "select segmentScore(3) as score"
		},
	}
}
