// Package realw models the paper's three proprietary customer workloads
// (§10.1): W1 is a CRM application, W2 a configuration-management tool, and
// W3 a transportation-services backend. As in the paper, the schemas and
// data are synthetic (the real data was unavailable even to the authors)
// while the loops L1–L8 reproduce the structural variety Figure 9(c)
// reports: large loops with conditional logic, small loops with temp-table
// inserts (the paper's no-gain cases L2/L6), loops with queries inside the
// body, an ORDER BY loop, and the nested cursor loop L8.
package realw

import (
	"fmt"
	"math/rand"

	"aggify/internal/engine"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Sizes scales the synthetic datasets.
type Sizes struct {
	Accounts      int
	Activities    int // for the "whale" account driving L1
	Opportunities int
	Machines      int
	ConfigEntries int
	Versions      int
	Shipments     int
	LegsPerShip   int
}

// SizesFor derives workload sizes from a scale knob.
func SizesFor(scale float64) Sizes {
	max1 := func(x float64) int {
		if x < 1 {
			return 1
		}
		return int(x)
	}
	return Sizes{
		Accounts:      max1(200 * scale),
		Activities:    max1(20_000 * scale),
		Opportunities: max1(4_000 * scale),
		Machines:      max1(300 * scale),
		ConfigEntries: max1(6_000 * scale),
		Versions:      max1(1_500 * scale),
		Shipments:     max1(3_000 * scale),
		LegsPerShip:   4,
	}
}

// Load creates and populates the three workload schemas.
func Load(eng *engine.Engine, scale float64) error {
	rng := rand.New(rand.NewSource(424242))
	sz := SizesFor(scale)

	tx := eng.TxnMgr.Begin()
	defer tx.Rollback()

	// ----- W1: CRM -----
	accounts, err := eng.CreateTable("accounts", storage.NewSchema(
		storage.Col("a_id", sqltypes.Int),
		storage.Col("a_name", sqltypes.VarChar(30)),
		storage.Col("a_segment", sqltypes.Int),
	))
	if err != nil {
		return err
	}
	activities, err := eng.CreateTable("activities", storage.NewSchema(
		storage.Col("act_id", sqltypes.Int),
		storage.Col("act_account", sqltypes.Int),
		storage.Col("act_seq", sqltypes.Int),
		storage.Col("act_type", sqltypes.Int),
		storage.Col("act_minutes", sqltypes.Int),
		storage.Col("act_score", sqltypes.Float),
	))
	if err != nil {
		return err
	}
	opportunities, err := eng.CreateTable("opportunities", storage.NewSchema(
		storage.Col("o_id", sqltypes.Int),
		storage.Col("o_account", sqltypes.Int),
		storage.Col("o_stage", sqltypes.Int),
		storage.Col("o_value", sqltypes.Float),
	))
	if err != nil {
		return err
	}
	for i := 1; i <= sz.Accounts; i++ {
		if err := accounts.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("account-%d", i)),
			sqltypes.NewInt(int64(1 + i%5)),
		}); err != nil {
			return err
		}
	}
	// Account 1 is the whale with most of the activity volume (L1's loop).
	for i := 1; i <= sz.Activities; i++ {
		acct := int64(1)
		if i%4 == 0 {
			acct = int64(2 + rng.Intn(sz.Accounts-1))
		}
		if err := activities.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(acct),
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(rng.Intn(4))),
			sqltypes.NewInt(int64(5 + rng.Intn(115))),
			sqltypes.NewFloat(rng.Float64() * 10),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= sz.Opportunities; i++ {
		if err := opportunities.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(sz.Accounts))),
			sqltypes.NewInt(int64(1 + rng.Intn(6))),
			sqltypes.NewFloat(float64(1000+rng.Intn(2_000_000)) / 100),
		}); err != nil {
			return err
		}
	}

	// ----- W2: configuration management -----
	machines, err := eng.CreateTable("machines", storage.NewSchema(
		storage.Col("m_id", sqltypes.Int),
		storage.Col("m_name", sqltypes.VarChar(30)),
		storage.Col("m_env", sqltypes.Int),
	))
	if err != nil {
		return err
	}
	configEntries, err := eng.CreateTable("config_entries", storage.NewSchema(
		storage.Col("ce_id", sqltypes.Int),
		storage.Col("ce_machine", sqltypes.Int),
		storage.Col("ce_key", sqltypes.VarChar(40)),
		storage.Col("ce_value", sqltypes.VarChar(60)),
		storage.Col("ce_version", sqltypes.Int),
	))
	if err != nil {
		return err
	}
	versions, err := eng.CreateTable("versions", storage.NewSchema(
		storage.Col("v_id", sqltypes.Int),
		storage.Col("v_machine", sqltypes.Int),
		storage.Col("v_num", sqltypes.Int),
	))
	if err != nil {
		return err
	}
	for i := 1; i <= sz.Machines; i++ {
		if err := machines.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("host-%04d", i)),
			sqltypes.NewInt(int64(1 + i%3)),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= sz.ConfigEntries; i++ {
		if err := configEntries.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(sz.Machines))),
			sqltypes.NewString(fmt.Sprintf("key.%d", rng.Intn(40))),
			sqltypes.NewString(fmt.Sprintf("value-%d", rng.Intn(1000))),
			sqltypes.NewInt(int64(1 + rng.Intn(10))),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= sz.Versions; i++ {
		if err := versions.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(sz.Machines))),
			sqltypes.NewInt(int64(1 + rng.Intn(12))),
		}); err != nil {
			return err
		}
	}

	// ----- W3: transportation -----
	shipments, err := eng.CreateTable("shipments", storage.NewSchema(
		storage.Col("s_id", sqltypes.Int),
		storage.Col("s_route", sqltypes.Int),
		storage.Col("s_weight", sqltypes.Float),
		storage.Col("s_revenue", sqltypes.Float),
	))
	if err != nil {
		return err
	}
	legs, err := eng.CreateTable("legs", storage.NewSchema(
		storage.Col("l_id", sqltypes.Int),
		storage.Col("l_shipment", sqltypes.Int),
		storage.Col("l_seq", sqltypes.Int),
		storage.Col("l_planned_hours", sqltypes.Float),
		storage.Col("l_actual_hours", sqltypes.Float),
	))
	if err != nil {
		return err
	}
	legID := 0
	for i := 1; i <= sz.Shipments; i++ {
		if err := shipments.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(25))),
			sqltypes.NewFloat(float64(100+rng.Intn(40_000)) / 10),
			sqltypes.NewFloat(float64(5_000+rng.Intn(500_000)) / 100),
		}); err != nil {
			return err
		}
		nl := 1 + rng.Intn(sz.LegsPerShip*2-1)
		for j := 0; j < nl; j++ {
			legID++
			planned := 1 + rng.Float64()*20
			actual := planned * (0.8 + rng.Float64()*0.6)
			if err := legs.Insert(tx, []sqltypes.Value{
				sqltypes.NewInt(int64(legID)),
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(int64(j + 1)),
				sqltypes.NewFloat(planned),
				sqltypes.NewFloat(actual),
			}); err != nil {
				return err
			}
		}
	}

	if err := tx.Commit(); err != nil {
		return err
	}

	for _, ix := range [][2]string{
		{"activities", "act_account"}, {"opportunities", "o_account"},
		{"config_entries", "ce_machine"}, {"versions", "v_machine"},
		{"legs", "l_shipment"}, {"shipments", "s_route"},
		{"accounts", "a_id"}, {"machines", "m_id"}, {"shipments", "s_id"},
	} {
		if err := eng.CreateIndex(ix[0], ix[1]); err != nil {
			return err
		}
	}

	// Session temp tables used by L2/L6 are created per session by the
	// harness (see TempSetup).
	return nil
}

// TempSetup creates the session temp tables L2 and L6 insert into.
const TempSetup = `
create table #staging (k varchar(40), v varchar(60));
create table #drift (m int, n int);
`
