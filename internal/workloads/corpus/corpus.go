// Package corpus embeds the application sources scanned by the Table 1
// applicability analysis. The paper manually analyzed three open-source
// Java applications (RUBiS, RUBBoS, and a subset of Adempiere's files);
// since this reproduction's analyses run on the dialect, the corpus holds
// those applications' data-access routines transcribed into it — each Java
// while(rs.next()) loop as a cursor loop, and the utility while loops as
// plain loops. RUBiS and RUBBoS are transcribed at the paper's full counts
// (16 and 41 while loops); Adempiere is a ~1/3-scale subset preserving the
// paper's cursor-loop share (the paper itself sampled 25 files).
package corpus

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
)

//go:embed rubis/*.sql rubbos/*.sql adempiere/*.sql
var files embed.FS

// Apps lists the corpus applications in Table 1 order.
func Apps() []string { return []string{"rubis", "rubbos", "adempiere"} }

// Source is one corpus file.
type Source struct {
	App  string
	Name string
	SQL  string
}

// Sources returns the files of one application, sorted by name.
func Sources(app string) ([]Source, error) {
	entries, err := fs.ReadDir(files, app)
	if err != nil {
		return nil, fmt.Errorf("corpus: unknown app %q: %w", app, err)
	}
	var out []Source
	for _, e := range entries {
		data, err := files.ReadFile(app + "/" + e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, Source{App: app, Name: e.Name(), SQL: string(data)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
