-- Adempiere ERP: invoice processing (corpus subset; the paper likewise
-- sampled a subset of files).

create function invoiceOpenAmount(@invoice int) returns float as
begin
  declare @qty float;
  declare @price float;
  declare @open float = 0;
  declare c cursor for
    select il_qty, il_price from invoice_lines where il_invoice = @invoice;
  open c;
  fetch next from c into @qty, @price;
  while @@fetch_status = 0
  begin
    set @open = @open + @qty * @price;
    fetch next from c into @qty, @price;
  end
  close c;
  deallocate c;
  return @open;
end
GO

create function invoiceTaxTotal(@invoice int) returns float as
begin
  declare @amount float;
  declare @rate float;
  declare @tax float = 0;
  declare c cursor for
    select il_qty * il_price, t_rate from invoice_lines, taxes
    where il_tax = t_id and il_invoice = @invoice;
  open c;
  fetch next from c into @amount, @rate;
  while @@fetch_status = 0
  begin
    set @tax = @tax + @amount * @rate;
    fetch next from c into @amount, @rate;
  end
  close c;
  deallocate c;
  return @tax;
end
GO

create function overdueInvoices(@partner int, @asof date) returns int as
begin
  declare @due date;
  declare @paid int;
  declare @n int = 0;
  declare c cursor for
    select i_duedate, i_ispaid from invoices where i_partner = @partner;
  open c;
  fetch next from c into @due, @paid;
  while @@fetch_status = 0
  begin
    if @paid = 0 and @due < @asof
      set @n = @n + 1;
    fetch next from c into @due, @paid;
  end
  close c;
  deallocate c;
  return @n;
end
GO

create procedure markDunningLevel(@partner int, @asof date) as
begin
  -- NOT aggifiable: updates a persistent table inside the loop.
  declare @inv int;
  declare @due date;
  declare c cursor for
    select i_id, i_duedate from invoices where i_partner = @partner and i_ispaid = 0;
  open c;
  fetch next from c into @inv, @due;
  while @@fetch_status = 0
  begin
    if @due < @asof
      update invoices set i_dunning = i_dunning + 1 where i_id = @inv;
    fetch next from c into @inv, @due;
  end
  close c;
  deallocate c;
end
GO

create function paymentAllocation(@payment int) returns float as
begin
  declare @alloc float;
  declare @sum float = 0;
  declare c cursor for
    select al_amount from allocations where al_payment = @payment;
  open c;
  fetch next from c into @alloc;
  while @@fetch_status = 0
  begin
    set @sum = @sum + @alloc;
    fetch next from c into @alloc;
  end
  close c;
  deallocate c;
  return @sum;
end
GO

create function partnerBalance(@partner int) returns float as
begin
  declare @amt float;
  declare @sign int;
  declare @bal float = 0;
  declare c cursor for
    select le_amount, le_sign from ledger_entries where le_partner = @partner order by le_date;
  open c;
  fetch next from c into @amt, @sign;
  while @@fetch_status = 0
  begin
    if @sign > 0
      set @bal = @bal + @amt;
    else
      set @bal = @bal - @amt;
    fetch next from c into @amt, @sign;
  end
  close c;
  deallocate c;
  return @bal;
end
GO

create function creditCheck(@partner int, @limit float) returns int as
begin
  -- NOT aggifiable: RETURN from the enclosing function inside the loop.
  declare @amt float;
  declare @running float = 0;
  declare c cursor for
    select i_grandtotal from invoices where i_partner = @partner and i_ispaid = 0;
  open c;
  fetch next from c into @amt;
  while @@fetch_status = 0
  begin
    set @running = @running + @amt;
    if @running > @limit
      return 1;
    fetch next from c into @amt;
  end
  close c;
  deallocate c;
  return 0;
end
GO

create function currencyRound(@amount float, @precision int) returns float as
begin
  -- Plain utility loop.
  declare @f float = 1;
  declare @i int = 0;
  while @i < @precision
  begin
    set @f = @f * 10;
    set @i = @i + 1;
  end
  return round(@amount * @f, 0) / @f;
end
GO

create function discountSchedule(@partner int) returns float as
begin
  declare @pct float;
  declare @best float = 0;
  declare c cursor for
    select ds_pct from discount_schedules where ds_partner = @partner;
  open c;
  fetch next from c into @pct;
  while @@fetch_status = 0
  begin
    if @pct > @best set @best = @pct;
    fetch next from c into @pct;
  end
  close c;
  deallocate c;
  return @best;
end
