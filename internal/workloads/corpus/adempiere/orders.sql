-- Adempiere ERP: sales and purchase order processing.

create function orderGrandTotal(@order int) returns float as
begin
  declare @qty float;
  declare @price float;
  declare @discount float;
  declare @total float = 0;
  declare c cursor for
    select ol_qty, ol_price, ol_discount from order_lines where ol_order = @order;
  open c;
  fetch next from c into @qty, @price, @discount;
  while @@fetch_status = 0
  begin
    set @total = @total + @qty * @price * (1 - @discount);
    fetch next from c into @qty, @price, @discount;
  end
  close c;
  deallocate c;
  return @total;
end
GO

create function backorderedLines(@order int) returns int as
begin
  declare @ordered float;
  declare @delivered float;
  declare @n int = 0;
  declare c cursor for
    select ol_qty, ol_qtydelivered from order_lines where ol_order = @order;
  open c;
  fetch next from c into @ordered, @delivered;
  while @@fetch_status = 0
  begin
    if @delivered < @ordered
      set @n = @n + 1;
    fetch next from c into @ordered, @delivered;
  end
  close c;
  deallocate c;
  return @n;
end
GO

create function marginForOrder(@order int) returns float as
begin
  declare @qty float;
  declare @price float;
  declare @cost float;
  declare @margin float = 0;
  declare c cursor for
    select ol_qty, ol_price, p_cost from order_lines, products
    where ol_product = p_id and ol_order = @order;
  open c;
  fetch next from c into @qty, @price, @cost;
  while @@fetch_status = 0
  begin
    set @margin = @margin + @qty * (@price - @cost);
    fetch next from c into @qty, @price, @cost;
  end
  close c;
  deallocate c;
  return @margin;
end
GO

create function openOrdersValue(@partner int) returns float as
begin
  declare @total float;
  declare @value float = 0;
  declare c cursor for
    select o_grandtotal from orders where o_partner = @partner and o_status = 'IP';
  open c;
  fetch next from c into @total;
  while @@fetch_status = 0
  begin
    set @value = @value + @total;
    fetch next from c into @total;
  end
  close c;
  deallocate c;
  return @value;
end
GO

create function promisedDateSlip(@order int) returns int as
begin
  declare @promised date;
  declare @delivered date;
  declare @slip int = 0;
  declare c cursor for
    select ol_datepromised, ol_datedelivered from order_lines
    where ol_order = @order and ol_qtydelivered > 0;
  open c;
  fetch next from c into @promised, @delivered;
  while @@fetch_status = 0
  begin
    if @delivered > @promised
      set @slip = @slip + (@delivered - @promised);
    fetch next from c into @promised, @delivered;
  end
  close c;
  deallocate c;
  return @slip;
end
GO

create procedure reprintOrders(@partner int) as
begin
  -- NOT aggifiable: the loop emits a result set per order (client output).
  declare @id int;
  declare c cursor for
    select o_id from orders where o_partner = @partner;
  open c;
  fetch next from c into @id;
  while @@fetch_status = 0
  begin
    select ol_product, ol_qty from order_lines where ol_order = @id;
    fetch next from c into @id;
  end
  close c;
  deallocate c;
end
GO

create function freightEstimate(@order int) returns float as
begin
  declare @weight float;
  declare @freight float = 0;
  declare @bracket float = 0;
  declare c cursor for
    select sh_qty * p_weight from shipment_lines, products, orders
    where sh_product = p_id and sh_shipment = o_shipment and o_id = @order;
  open c;
  fetch next from c into @weight;
  while @@fetch_status = 0
  begin
    set @freight = @freight + @weight * 0.12;
    if @weight > @bracket set @bracket = @weight;
    fetch next from c into @weight;
  end
  close c;
  deallocate c;
  return @freight + @bracket;
end
GO

create function priceListVersion(@list int, @asof date) returns int as
begin
  declare @v int;
  declare @d date;
  declare @best int = 0;
  declare @bestd date;
  declare c cursor for
    select pv_id, pv_validfrom from pricelist_versions where pv_list = @list;
  open c;
  fetch next from c into @v, @d;
  while @@fetch_status = 0
  begin
    if @d <= @asof and (@bestd is null or @d > @bestd)
    begin
      set @best = @v;
      set @bestd = @d;
    end
    fetch next from c into @v, @d;
  end
  close c;
  deallocate c;
  return @best;
end
GO

create function taxBracketScan(@amount float) returns float as
begin
  -- Plain bracket-walk loop over constants.
  declare @tax float = 0;
  declare @left float = @amount;
  declare @bracket float = 10000;
  while @left > 0
  begin
    if @left > @bracket
    begin
      set @tax = @tax + @bracket * 0.2;
      set @left = @left - @bracket;
    end
    else
    begin
      set @tax = @tax + @left * 0.1;
      set @left = 0;
    end
  end
  return @tax;
end
