-- Adempiere ERP: accounting, posting, and period-end processing.

create function trialBalance(@account int, @period int) returns float as
begin
  declare @dr float;
  declare @cr float;
  declare @bal float = 0;
  declare c cursor for
    select f_debit, f_credit from fact_acct
    where f_account = @account and f_period = @period;
  open c;
  fetch next from c into @dr, @cr;
  while @@fetch_status = 0
  begin
    set @bal = @bal + @dr - @cr;
    fetch next from c into @dr, @cr;
  end
  close c;
  deallocate c;
  return @bal;
end
GO

create function unpostedDocuments(@period int) returns int as
begin
  declare @id int;
  declare @n int = 0;
  declare c cursor for
    select d_id from documents where d_period = @period and d_posted = 0;
  open c;
  fetch next from c into @id;
  while @@fetch_status = 0
  begin
    set @n = @n + 1;
    fetch next from c into @id;
  end
  close c;
  deallocate c;
  return @n;
end
GO

create procedure postPeriod(@period int) as
begin
  -- NOT aggifiable: posts (updates) each document.
  declare @id int;
  declare c cursor for
    select d_id from documents where d_period = @period and d_posted = 0;
  open c;
  fetch next from c into @id;
  while @@fetch_status = 0
  begin
    update documents set d_posted = 1 where d_id = @id;
    fetch next from c into @id;
  end
  close c;
  deallocate c;
end
GO

create function agingBucket30(@partner int, @asof date) returns float as
begin
  declare @total float;
  declare @due date;
  declare @bucket float = 0;
  declare c cursor for
    select i_grandtotal, i_duedate from invoices
    where i_partner = @partner and i_ispaid = 0;
  open c;
  fetch next from c into @total, @due;
  while @@fetch_status = 0
  begin
    if @asof - @due between 0 and 30
      set @bucket = @bucket + @total;
    fetch next from c into @total, @due;
  end
  close c;
  deallocate c;
  return @bucket;
end
GO

create function currencyGainLoss(@period int) returns float as
begin
  declare @amt float;
  declare @rate1 float;
  declare @rate2 float;
  declare @gl float = 0;
  declare c cursor for
    select le_amount, le_rate_at_booking, le_rate_at_settle
    from ledger_entries where le_period = @period and le_fx = 1;
  open c;
  fetch next from c into @amt, @rate1, @rate2;
  while @@fetch_status = 0
  begin
    set @gl = @gl + @amt * (@rate2 - @rate1);
    fetch next from c into @amt, @rate1, @rate2;
  end
  close c;
  deallocate c;
  return @gl;
end
GO

create function budgetVariance(@dept int, @period int) returns float as
begin
  declare @actual float;
  declare @budget float;
  declare @var float = 0;
  declare c cursor for
    select b_actual, b_budget from budget_lines
    where b_dept = @dept and b_period = @period;
  open c;
  fetch next from c into @actual, @budget;
  while @@fetch_status = 0
  begin
    set @var = @var + (@actual - @budget);
    fetch next from c into @actual, @budget;
  end
  close c;
  deallocate c;
  return @var;
end
GO

create function depreciationRun(@asset int, @months int) returns float as
begin
  -- Plain amortization loop.
  declare @value float = 10000;
  declare @m int = 0;
  declare @dep float = 0;
  while @m < @months
  begin
    set @dep = @dep + @value * 0.02;
    set @value = @value - @value * 0.02;
    set @m = @m + 1;
  end
  return @dep;
end
GO

create function statementLineMatch(@statement int) returns int as
begin
  declare @amt float;
  declare @matched int = 0;
  declare c cursor for
    select bl_amount from bank_lines where bl_statement = @statement;
  open c;
  fetch next from c into @amt;
  while @@fetch_status = 0
  begin
    if exists (select * from allocations where al_amount = @amt)
      set @matched = @matched + 1;
    fetch next from c into @amt;
  end
  close c;
  deallocate c;
  return @matched;
end
GO

create function vatSummary(@period int) returns float as
begin
  declare @tax float;
  declare @sum float = 0;
  declare c cursor for
    select il_qty * il_price * t_rate from invoice_lines, taxes, invoices
    where il_tax = t_id and il_invoice = i_id and i_period = @period;
  open c;
  fetch next from c into @tax;
  while @@fetch_status = 0
  begin
    set @sum = @sum + @tax;
    fetch next from c into @tax;
  end
  close c;
  deallocate c;
  return @sum;
end
GO

create function interestAccrual(@principal float, @days int) returns float as
begin
  -- Plain daily-accrual loop.
  declare @acc float = 0;
  declare @d int = 0;
  while @d < @days
  begin
    set @acc = @acc + @principal * 0.0001;
    set @d = @d + 1;
  end
  return @acc;
end
