-- Adempiere ERP: inventory and material management.

create function onHandQty(@product int, @warehouse int) returns float as
begin
  declare @qty float;
  declare @onhand float = 0;
  declare c cursor for
    select sl_qty from storage_levels
    where sl_product = @product and sl_warehouse = @warehouse;
  open c;
  fetch next from c into @qty;
  while @@fetch_status = 0
  begin
    set @onhand = @onhand + @qty;
    fetch next from c into @qty;
  end
  close c;
  deallocate c;
  return @onhand;
end
GO

create function reservedQty(@product int) returns float as
begin
  declare @qty float;
  declare @reserved float = 0;
  declare c cursor for
    select ol_qtyreserved from order_lines where ol_product = @product;
  open c;
  fetch next from c into @qty;
  while @@fetch_status = 0
  begin
    if @qty > 0
      set @reserved = @reserved + @qty;
    fetch next from c into @qty;
  end
  close c;
  deallocate c;
  return @reserved;
end
GO

create function reorderCandidates(@warehouse int) returns int as
begin
  declare @product int;
  declare @qty float;
  declare @minlevel float;
  declare @n int = 0;
  declare c cursor for
    select sl_product, sl_qty, sl_minlevel from storage_levels
    where sl_warehouse = @warehouse;
  open c;
  fetch next from c into @product, @qty, @minlevel;
  while @@fetch_status = 0
  begin
    if @qty < @minlevel
      set @n = @n + 1;
    fetch next from c into @product, @qty, @minlevel;
  end
  close c;
  deallocate c;
  return @n;
end
GO

create procedure replenishWarehouse(@warehouse int) as
begin
  -- NOT aggifiable: calls a document-posting procedure per row.
  declare @product int;
  declare c cursor for
    select sl_product from storage_levels
    where sl_warehouse = @warehouse and sl_qty < sl_minlevel;
  open c;
  fetch next from c into @product;
  while @@fetch_status = 0
  begin
    exec createRequisition @warehouse, @product;
    fetch next from c into @product;
  end
  close c;
  deallocate c;
end
GO

create function fifoCost(@product int, @need float) returns float as
begin
  declare @qty float;
  declare @cost float;
  declare @left float = @need;
  declare @total float = 0;
  declare c cursor for
    select cl_qty, cl_cost from cost_layers where cl_product = @product order by cl_date;
  open c;
  fetch next from c into @qty, @cost;
  while @@fetch_status = 0
  begin
    if @left > 0
    begin
      if @qty > @left
      begin
        set @total = @total + @left * @cost;
        set @left = 0;
      end
      else
      begin
        set @total = @total + @qty * @cost;
        set @left = @left - @qty;
      end
    end
    fetch next from c into @qty, @cost;
  end
  close c;
  deallocate c;
  return @total;
end
GO

create function shipmentWeight(@shipment int) returns float as
begin
  declare @qty float;
  declare @unitweight float;
  declare @w float = 0;
  declare c cursor for
    select sh_qty, p_weight from shipment_lines, products
    where sh_product = p_id and sh_shipment = @shipment;
  open c;
  fetch next from c into @qty, @unitweight;
  while @@fetch_status = 0
  begin
    set @w = @w + @qty * @unitweight;
    fetch next from c into @qty, @unitweight;
  end
  close c;
  deallocate c;
  return @w;
end
GO

create function cycleCountVariance(@warehouse int) returns float as
begin
  declare @counted float;
  declare @booked float;
  declare @variance float = 0;
  declare c cursor for
    select cc_counted, cc_booked from cycle_counts where cc_warehouse = @warehouse;
  open c;
  fetch next from c into @counted, @booked;
  while @@fetch_status = 0
  begin
    if @counted > @booked
      set @variance = @variance + (@counted - @booked);
    else
      set @variance = @variance + (@booked - @counted);
    fetch next from c into @counted, @booked;
  end
  close c;
  deallocate c;
  return @variance;
end
GO

create procedure rebuildStorageIndex(@warehouse int) as
begin
  -- NOT aggifiable: row-by-row DELETE+INSERT of a persistent summary table.
  declare @product int;
  declare @qty float;
  declare c cursor for
    select sl_product, sl_qty from storage_levels where sl_warehouse = @warehouse;
  open c;
  fetch next from c into @product, @qty;
  while @@fetch_status = 0
  begin
    delete from storage_summary where ss_product = @product;
    insert into storage_summary values (@product, @qty);
    fetch next from c into @product, @qty;
  end
  close c;
  deallocate c;
end
GO

create function binarySearchSteps(@n int) returns int as
begin
  -- Plain loop from the utility layer.
  declare @steps int = 0;
  declare @span int = @n;
  while @span > 1
  begin
    set @span = @span / 2;
    set @steps = @steps + 1;
  end
  return @steps;
end
