-- RUBiS buy-now and auction-close flows.

create function buyNowTotal(@user int, @since date) returns float as
begin
  declare @bid float;
  declare @qty int;
  declare @total float = 0;
  declare c cursor for
    select b_bid, b_qty from bids where b_user_id = @user and b_date >= @since;
  open c;
  fetch next from c into @bid, @qty;
  while @@fetch_status = 0
  begin
    set @total = @total + @bid * @qty;
    fetch next from c into @bid, @qty;
  end
  close c;
  deallocate c;
  return @total;
end
GO

create function closingPrice(@item int) returns float as
begin
  declare @bid float;
  declare @first float;
  declare @second float = 0;
  set @first = 0;
  declare c cursor for
    select b_bid from bids where b_item_id = @item;
  open c;
  fetch next from c into @bid;
  while @@fetch_status = 0
  begin
    if @bid > @first
    begin
      set @second = @first;
      set @first = @bid;
    end
    else if @bid > @second
      set @second = @bid;
    fetch next from c into @bid;
  end
  close c;
  deallocate c;
  return @second;
end
GO

create function sellerRating(@seller int) returns float as
begin
  declare @r int;
  declare @sum float = 0;
  declare @n int = 0;
  declare c cursor for
    select c_rating from comments, items
    where c_item_id = i_id and i_seller = @seller;
  open c;
  fetch next from c into @r;
  while @@fetch_status = 0
  begin
    set @sum = @sum + @r;
    set @n = @n + 1;
    fetch next from c into @r;
  end
  close c;
  deallocate c;
  if @n = 0 return 0;
  return @sum / @n;
end
