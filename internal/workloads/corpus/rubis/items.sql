-- RUBiS item detail and bid history servlets.

create function viewBidHistory(@item int) returns float as
begin
  declare @bid float;
  declare @mx float = 0;
  declare c cursor for
    select b_bid from bids where b_item_id = @item order by b_date;
  open c;
  fetch next from c into @bid;
  while @@fetch_status = 0
  begin
    if @bid > @mx set @mx = @bid;
    fetch next from c into @bid;
  end
  close c;
  deallocate c;
  return @mx;
end
GO

create function viewItem(@item int) returns int as
begin
  declare @uid int;
  declare @qty int;
  declare @bidders int = 0;
  declare c cursor for
    select b_user_id, b_qty from bids where b_item_id = @item;
  open c;
  fetch next from c into @uid, @qty;
  while @@fetch_status = 0
  begin
    set @bidders = @bidders + 1;
    fetch next from c into @uid, @qty;
  end
  close c;
  deallocate c;
  return @bidders;
end
GO

create function currentReserveMet(@item int, @reserve float) returns bit as
begin
  declare @bid float;
  declare @met bit = false;
  declare c cursor for
    select b_bid from bids where b_item_id = @item;
  open c;
  fetch next from c into @bid;
  while @@fetch_status = 0
  begin
    if @bid >= @reserve
      set @met = true;
    fetch next from c into @bid;
  end
  close c;
  deallocate c;
  return @met;
end
GO

create function relatedItemCount(@seller int, @cat int) returns int as
begin
  declare @id int;
  declare @n int = 0;
  declare c cursor for
    select i_id from items where i_seller = @seller;
  open c;
  fetch next from c into @id;
  while @@fetch_status = 0
  begin
    if exists (select * from items where i_id = @id and i_category = @cat)
      set @n = @n + 1;
    fetch next from c into @id;
  end
  close c;
  deallocate c;
  return @n;
end
