-- RUBiS user pages: ViewUserInfo, AboutMe, and registration helpers.

create function viewUserComments(@user int) returns int as
begin
  declare @rating int;
  declare @total int = 0;
  declare c cursor for
    select c_rating from comments where c_to = @user;
  open c;
  fetch next from c into @rating;
  while @@fetch_status = 0
  begin
    set @total = @total + @rating;
    fetch next from c into @rating;
  end
  close c;
  deallocate c;
  return @total;
end
GO

create function aboutMeBids(@user int) returns float as
begin
  declare @bid float;
  declare @qty int;
  declare @spent float = 0;
  declare c cursor for
    select b_bid, b_qty from bids where b_user_id = @user;
  open c;
  fetch next from c into @bid, @qty;
  while @@fetch_status = 0
  begin
    set @spent = @spent + @bid * @qty;
    fetch next from c into @bid, @qty;
  end
  close c;
  deallocate c;
  return @spent;
end
GO

create function aboutMeSales(@user int) returns float as
begin
  declare @price float;
  declare @total float = 0;
  declare c cursor for
    select i_initial_price from items where i_seller = @user;
  open c;
  fetch next from c into @price;
  while @@fetch_status = 0
  begin
    set @total = @total + @price;
    fetch next from c into @price;
  end
  close c;
  deallocate c;
  return @total;
end
GO

create function aboutMeWonItems(@user int) returns int as
begin
  declare @item int;
  declare @bid float;
  declare @won int = 0;
  declare c cursor for
    select b_item_id, b_bid from bids where b_user_id = @user;
  open c;
  fetch next from c into @item, @bid;
  while @@fetch_status = 0
  begin
    if not exists (select * from bids where b_item_id = @item and b_bid > @bid)
      set @won = @won + 1;
    fetch next from c into @item, @bid;
  end
  close c;
  deallocate c;
  return @won;
end
GO

create function nicknameRetry(@base int) returns int as
begin
  -- Retry loop over candidate ids (no query result iteration).
  declare @candidate int = @base;
  declare @tries int = 0;
  while @tries < 10 and exists (select * from users where u_id = @candidate)
  begin
    set @candidate = @candidate + 1;
    set @tries = @tries + 1;
  end
  return @candidate;
end
GO

create function ratingStars(@rating int) returns int as
begin
  -- Convert a rating to a star count with a counting loop.
  declare @stars int = 0;
  declare @left int = @rating;
  while @left >= 5
  begin
    set @stars = @stars + 1;
    set @left = @left - 5;
  end
  return @stars;
end
