-- RUBiS browse/search servlets, transcribed from the Java data-access code
-- into the dialect (each while(rs.next()) loop becomes a cursor loop).

create function searchItemsByCategory(@cat int, @maxPrice float) returns int as
begin
  declare @price float;
  declare @qty int;
  declare @matches int = 0;
  declare c cursor for
    select i_initial_price, i_quantity from items where i_category = @cat;
  open c;
  fetch next from c into @price, @qty;
  while @@fetch_status = 0
  begin
    if @price <= @maxPrice and @qty > 0
      set @matches = @matches + 1;
    fetch next from c into @price, @qty;
  end
  close c;
  deallocate c;
  return @matches;
end
GO

create function searchItemsByRegion(@region int) returns float as
begin
  declare @price float;
  declare @best float = -1;
  declare c cursor for
    select i_initial_price from items, users
    where i_seller = u_id and u_region = @region;
  open c;
  fetch next from c into @price;
  while @@fetch_status = 0
  begin
    if @best < 0 or @price < @best
      set @best = @price;
    fetch next from c into @price;
  end
  close c;
  deallocate c;
  return @best;
end
GO

create function browseCategories(@minItems int) returns int as
begin
  declare @cat int;
  declare @n int;
  declare @shown int = 0;
  declare c cursor for
    select i_category, count(*) from items group by i_category;
  open c;
  fetch next from c into @cat, @n;
  while @@fetch_status = 0
  begin
    if @n >= @minItems
      set @shown = @shown + 1;
    fetch next from c into @cat, @n;
  end
  close c;
  deallocate c;
  return @shown;
end
