-- RUBBoS moderation queue and user administration.

create function moderationBacklog(@cat int) returns int as
begin
  declare @id int;
  declare @n int = 0;
  declare c cursor for
    select st_id from bb_stories where st_category = @cat and st_moderated = 0;
  open c;
  fetch next from c into @id;
  while @@fetch_status = 0
  begin
    set @n = @n + 1;
    fetch next from c into @id;
  end
  close c;
  deallocate c;
  return @n;
end
GO

create function moderatorLoad(@moderator int) returns int as
begin
  declare @assigned int;
  declare @load int = 0;
  declare c cursor for
    select md_story from bb_moderations where md_user = @moderator;
  open c;
  fetch next from c into @assigned;
  while @@fetch_status = 0
  begin
    set @load = @load + 1;
    fetch next from c into @assigned;
  end
  close c;
  deallocate c;
  return @load;
end
GO

create function suspiciousUsers(@minPosts int) returns int as
begin
  declare @author int;
  declare @posts int;
  declare @sus int = 0;
  declare c cursor for
    select cm_author, count(*) from bb_comments group by cm_author;
  open c;
  fetch next from c into @author, @posts;
  while @@fetch_status = 0
  begin
    if @posts >= @minPosts
    begin
      if (select min(cm_rating) from bb_comments where cm_author = @author) < -3
        set @sus = @sus + 1;
    end
    fetch next from c into @author, @posts;
  end
  close c;
  deallocate c;
  return @sus;
end
GO

create function reviewQueueAge(@moderator int) returns int as
begin
  declare @d date;
  declare @days int = 0;
  declare c cursor for
    select st_date from bb_stories, bb_moderations
    where st_id = md_story and md_user = @moderator;
  open c;
  fetch next from c into @d;
  while @@fetch_status = 0
  begin
    set @days = @days + (date '2020-06-01' - @d);
    fetch next from c into @d;
  end
  close c;
  deallocate c;
  return @days;
end
