-- RUBBoS servlet utility layer: formatting, caching, and housekeeping.
-- Most of these loops iterate over in-memory state, not query results —
-- the reason RUBBoS's cursor-loop share (14 of 41) is lower than RUBiS's.

create function ratingHistogramBucket(@rating int) returns int as
begin
  declare @bucket int = 0;
  declare @r int = @rating;
  while @r > 5
  begin
    set @bucket = @bucket + 1;
    set @r = @r - 5;
  end
  while @r < -5
  begin
    set @bucket = @bucket - 1;
    set @r = @r + 5;
  end
  return @bucket;
end
GO

create function starBar(@score int) returns varchar(20) as
begin
  declare @bar varchar(20) = '';
  declare @i int = 0;
  while @i < @score and @i < 10
  begin
    set @bar = @bar || '*';
    set @i = @i + 1;
  end
  while @i < 10
  begin
    set @bar = @bar || '.';
    set @i = @i + 1;
  end
  return @bar;
end
GO

create function cacheSlot(@key int, @slots int) returns int as
begin
  declare @h int = @key;
  declare @round int = 0;
  while @round < 3
  begin
    set @h = (@h * 31 + 7) % @slots;
    if @h < 0 set @h = @h + @slots;
    set @round = @round + 1;
  end
  return @h;
end
GO

create function retryWindow(@failures int) returns int as
begin
  declare @window int = 1;
  declare @i int = 0;
  while @i < @failures
  begin
    set @window = @window * 2;
    set @i = @i + 1;
  end
  declare @cap int = 0;
  while @window > 300
  begin
    set @window = @window - 300;
    set @cap = @cap + 1;
  end
  return @window + @cap;
end
GO

create function digits(@n int) returns int as
begin
  declare @d int = 0;
  declare @x int = @n;
  if @x < 0 set @x = 0 - @x;
  while @x > 0
  begin
    set @d = @d + 1;
    set @x = @x / 10;
  end
  if @d = 0 set @d = 1;
  return @d;
end
GO

create function padWidth(@n int, @width int) returns int as
begin
  declare @pad int = @width - digits(@n);
  declare @spaces int = 0;
  while @spaces < @pad
    set @spaces = @spaces + 1;
  return @spaces;
end
GO

create function gcd(@a int, @b int) returns int as
begin
  declare @x int = @a;
  declare @y int = @b;
  while @y <> 0
  begin
    declare @t int = @y;
    set @y = @x % @y;
    set @x = @t;
  end
  return @x;
end
GO

create function thumbnailSteps(@pixels int) returns int as
begin
  declare @steps int = 0;
  declare @p int = @pixels;
  while @p > 128
  begin
    set @p = @p / 2;
    set @steps = @steps + 1;
  end
  return @steps;
end
GO

create function sessionSweep(@active int, @budget int) returns int as
begin
  declare @swept int = 0;
  declare @left int = @budget;
  while @left > 0 and @swept < @active
  begin
    set @swept = @swept + 1;
    set @left = @left - 1;
  end
  return @swept;
end
GO

create function tokenBuckets(@requests int) returns int as
begin
  declare @tokens int = 10;
  declare @served int = 0;
  declare @r int = 0;
  while @r < @requests
  begin
    if @tokens > 0
    begin
      set @tokens = @tokens - 1;
      set @served = @served + 1;
    end
    set @r = @r + 1;
    if @r % 5 = 0 set @tokens = @tokens + 1;
  end
  return @served;
end
GO

create function checksum32(@seed int, @rounds int) returns int as
begin
  declare @sum int = @seed;
  declare @i int = 0;
  while @i < @rounds
  begin
    set @sum = (@sum * 1103515245 + 12345) % 2147483647;
    set @i = @i + 1;
  end
  return @sum;
end
GO

create function wordWrapLines(@chars int, @width int) returns int as
begin
  declare @lines int = 0;
  declare @rest int = @chars;
  while @rest > 0
  begin
    set @lines = @lines + 1;
    set @rest = @rest - @width;
  end
  return @lines;
end
GO

create function pollBackoff(@tries int) returns int as
begin
  declare @sleep int = 0;
  declare @i int = 0;
  while @i < @tries
  begin
    set @sleep = @sleep + @i * 100;
    set @i = @i + 1;
  end
  return @sleep;
end
GO

create function interpolateSteps(@from int, @to int) returns int as
begin
  declare @cur int = @from;
  declare @steps int = 0;
  while @cur < @to
  begin
    set @cur = @cur + (@to - @cur) / 2 + 1;
    set @steps = @steps + 1;
  end
  return @steps;
end
GO

create function bannerRotation(@slots int, @seed int) returns int as
begin
  declare @pick int = @seed;
  declare @spin int = 0;
  while @spin < 4
  begin
    set @pick = (@pick + 17) % @slots;
    set @spin = @spin + 1;
  end
  return @pick;
end
GO

create function weekIndex(@d date) returns int as
begin
  declare @days int = @d - date '2020-01-01';
  declare @weeks int = 0;
  while @days >= 7
  begin
    set @days = @days - 7;
    set @weeks = @weeks + 1;
  end
  return @weeks;
end
GO

create function quotaLeft(@used int, @grant int) returns int as
begin
  declare @left int = @grant;
  declare @u int = 0;
  while @u < @used and @left > 0
  begin
    set @left = @left - 1;
    set @u = @u + 1;
  end
  return @left;
end
GO

create function escalationLevel(@age int) returns int as
begin
  declare @level int = 0;
  declare @a int = @age;
  while @a >= 30
  begin
    set @level = @level + 1;
    set @a = @a - 30;
  end
  return @level;
end
GO

create function activeAuthors(@since date) returns int as
begin
  declare @author int;
  declare @n int = 0;
  declare c cursor for
    select distinct cm_author from bb_comments where cm_date >= @since;
  open c;
  fetch next from c into @author;
  while @@fetch_status = 0
  begin
    set @n = @n + 1;
    fetch next from c into @author;
  end
  close c;
  deallocate c;
  return @n;
end
GO

create function frontPageScore(@day date) returns int as
begin
  declare @score int;
  declare @best int = 0;
  declare c cursor for
    select st_score from bb_stories where st_date = @day;
  open c;
  fetch next from c into @score;
  while @@fetch_status = 0
  begin
    if @score > @best set @best = @score;
    fetch next from c into @score;
  end
  close c;
  deallocate c;
  return @best;
end
GO

create function histogramRender(@lo int, @hi int, @buckets int) returns int as
begin
  declare @width int = 1;
  while @width * @buckets < @hi - @lo
    set @width = @width + 1;
  declare @b int = 0;
  declare @drawn int = 0;
  while @b < @buckets
  begin
    declare @x int = 0;
    while @x < @width
    begin
      set @drawn = @drawn + 1;
      set @x = @x + 1;
    end
    set @b = @b + 1;
  end
  return @drawn;
end
