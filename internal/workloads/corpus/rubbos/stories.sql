-- RUBBoS story browsing (bulletin-board benchmark).

create function storyScore(@story int) returns int as
begin
  declare @rating int;
  declare @score int = 0;
  declare c cursor for
    select cm_rating from bb_comments where cm_story = @story;
  open c;
  fetch next from c into @rating;
  while @@fetch_status = 0
  begin
    set @score = @score + @rating;
    fetch next from c into @rating;
  end
  close c;
  deallocate c;
  return @score;
end
GO

create function storiesOfTheDay(@day date) returns int as
begin
  declare @id int;
  declare @views int;
  declare @hot int = 0;
  declare c cursor for
    select st_id, st_views from bb_stories where st_date = @day;
  open c;
  fetch next from c into @id, @views;
  while @@fetch_status = 0
  begin
    if @views > 100
      set @hot = @hot + 1;
    fetch next from c into @id, @views;
  end
  close c;
  deallocate c;
  return @hot;
end
GO

create function categoryStoryCount(@cat int, @minScore int) returns int as
begin
  declare @score int;
  declare @n int = 0;
  declare c cursor for
    select st_score from bb_stories where st_category = @cat;
  open c;
  fetch next from c into @score;
  while @@fetch_status = 0
  begin
    if @score >= @minScore
      set @n = @n + 1;
    fetch next from c into @score;
  end
  close c;
  deallocate c;
  return @n;
end
GO

create function oldestUnmoderated(@cat int) returns date as
begin
  declare @d date;
  declare @oldest date;
  declare c cursor for
    select st_date from bb_stories where st_category = @cat and st_moderated = 0;
  open c;
  fetch next from c into @d;
  while @@fetch_status = 0
  begin
    if @oldest is null or @d < @oldest
      set @oldest = @d;
    fetch next from c into @d;
  end
  close c;
  deallocate c;
  return @oldest;
end
GO

create function previewLength(@title varchar(100)) returns int as
begin
  -- Truncate the title at word boundaries (string loop, no cursor).
  declare @n int = 0;
  declare @budget int = 60;
  while @budget > 0 and @n < len(@title)
  begin
    set @n = @n + 1;
    set @budget = @budget - 1;
  end
  return @n;
end
