-- RUBBoS comment threads.

create function threadDepthScore(@story int) returns int as
begin
  declare @parent int;
  declare @depthish int = 0;
  declare c cursor for
    select cm_parent from bb_comments where cm_story = @story;
  open c;
  fetch next from c into @parent;
  while @@fetch_status = 0
  begin
    if @parent > 0
      set @depthish = @depthish + 1;
    fetch next from c into @parent;
  end
  close c;
  deallocate c;
  return @depthish;
end
GO

create function userCommentKarma(@user int) returns int as
begin
  declare @rating int;
  declare @karma int = 0;
  declare c cursor for
    select cm_rating from bb_comments where cm_author = @user;
  open c;
  fetch next from c into @rating;
  while @@fetch_status = 0
  begin
    if @rating > 0
      set @karma = @karma + @rating * 2;
    else
      set @karma = @karma + @rating;
    fetch next from c into @rating;
  end
  close c;
  deallocate c;
  return @karma;
end
GO

create function flaggedInThread(@story int, @threshold int) returns int as
begin
  declare @r int;
  declare @flagged int = 0;
  declare c cursor for
    select cm_rating from bb_comments where cm_story = @story order by cm_date;
  open c;
  fetch next from c into @r;
  while @@fetch_status = 0
  begin
    if @r < @threshold
      set @flagged = @flagged + 1;
    fetch next from c into @r;
  end
  close c;
  deallocate c;
  return @flagged;
end
GO

create function lastActivity(@user int) returns date as
begin
  declare @d date;
  declare @latest date;
  declare c cursor for
    select cm_date from bb_comments where cm_author = @user;
  open c;
  fetch next from c into @d;
  while @@fetch_status = 0
  begin
    if @latest is null or @d > @latest
      set @latest = @d;
    fetch next from c into @d;
  end
  close c;
  deallocate c;
  return @latest;
end
GO

create function paginate(@total int, @pageSize int) returns int as
begin
  -- Classic page-count loop (no cursor).
  declare @pages int = 0;
  declare @left int = @total;
  while @left > 0
  begin
    set @pages = @pages + 1;
    set @left = @left - @pageSize;
  end
  return @pages;
end
GO

create function backoffDelay(@attempt int) returns int as
begin
  -- Exponential backoff table used by the servlet retry filter.
  declare @delay int = 1;
  declare @i int = 0;
  while @i < @attempt
  begin
    set @delay = @delay * 2;
    if @delay > 64 break;
    set @i = @i + 1;
  end
  return @delay;
end
