package wal

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"aggify/internal/sqltypes"
	"aggify/internal/txn"
)

func TestRecordRoundTrip(t *testing.T) {
	muts := []txn.Mutation{
		{Table: "orders", Op: txn.MutInsert, Rid: 0, Row: []sqltypes.Value{sqltypes.NewInt(7), sqltypes.NewString("x")}},
		{Table: "orders", Op: txn.MutUpdate, Rid: 3, Row: []sqltypes.Value{sqltypes.NewFloat(1.5), sqltypes.Null}},
		{Table: "orders", Op: txn.MutDelete, Rid: 9},
		{Table: "orders", Op: txn.MutTruncate, Rid: -1},
	}
	rec, err := DecodeRecord(EncodeCommit(42, muts))
	if err != nil {
		t.Fatal(err)
	}
	c, ok := rec.(*CommitRecord)
	if !ok || c.Epoch != 42 || len(c.Muts) != 4 {
		t.Fatalf("decoded %#v", rec)
	}
	// Truncate's rid is normalized to 0 on the wire.
	want := append([]txn.Mutation(nil), muts...)
	want[3].Rid = 0
	if !reflect.DeepEqual(c.Muts, want) {
		t.Fatalf("muts = %#v, want %#v", c.Muts, want)
	}

	ct, err := DecodeRecord(EncodeCreateTable(7, "t", []ColumnDef{
		{Name: "a", Type: sqltypes.Type{ID: sqltypes.TInt}},
		{Name: "b", Type: sqltypes.Type{ID: sqltypes.TChar, Prec: 12}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r := ct.(*CreateTableRecord); r.Epoch != 7 || r.Name != "t" || len(r.Cols) != 2 ||
		r.Cols[1].Type.Prec != 12 {
		t.Fatalf("create table decoded %#v", ct)
	}

	ci, err := DecodeRecord(EncodeCreateIndex(8, "t", "a", true))
	if err != nil {
		t.Fatal(err)
	}
	if r := ci.(*CreateIndexRecord); r.Epoch != 8 || r.Table != "t" || r.Column != "a" || !r.Ordered {
		t.Fatalf("create index decoded %#v", ci)
	}
	// A record without the trailing kind byte (pre-ordered-index logs)
	// decodes as a hash index.
	legacy := EncodeCreateIndex(8, "t", "a", false)
	legacy = legacy[:len(legacy)-1]
	ci, err = DecodeRecord(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if r := ci.(*CreateIndexRecord); r.Ordered {
		t.Fatalf("legacy create index decoded %#v", ci)
	}

	dt, err := DecodeRecord(EncodeDropTable(9, "t"))
	if err != nil {
		t.Fatal(err)
	}
	if r := dt.(*DropTableRecord); r.Epoch != 9 || r.Name != "t" {
		t.Fatalf("drop table decoded %#v", dt)
	}
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(EncodeCommit(uint64(i+1), []txn.Mutation{
			{Table: "t", Op: txn.MutInsert, Rid: i, Row: []sqltypes.Value{sqltypes.NewInt(int64(i))}},
		}))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("LSNs not increasing: %v", lsns)
		}
	}
	if err := l.WaitDurable(lsns[len(lsns)-1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var epochs []uint64
	err = ReadRecords(dir, func(p []byte) error {
		rec, err := DecodeRecord(p)
		if err != nil {
			return err
		}
		epochs = append(epochs, rec.(*CommitRecord).Epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 10 || epochs[0] != 1 || epochs[9] != 10 {
		t.Fatalf("replayed epochs %v", epochs)
	}
}

func TestTornTailStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(EncodeDropTable(uint64(i+1), "t")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: append a frame header that promises more
	// bytes than follow, plus a few garbage bytes.
	f, err := os.OpenFile(LogPath(dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var n int
	err = ReadRecords(dir, func(p []byte) error { n++; return nil })
	if err != nil {
		t.Fatalf("torn tail should not error: %v", err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want the 3 intact ones", n)
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(EncodeDropTable(1, "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(EncodeDropTable(2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the last payload byte.
	buf, err := os.ReadFile(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x01
	if err := os.WriteFile(LogPath(dir), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := ReadRecords(dir, func(p []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", n)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(EncodeDropTable(uint64(i+1), "t"))
			if err != nil {
				t.Error(err)
				return
			}
			if err := l.WaitDurable(lsn); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := ReadRecords(dir, func(p []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers {
		t.Fatalf("replayed %d records, want %d", n, writers)
	}
}

func TestLogReset(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(EncodeDropTable(1, "t")); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := l.Size()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	// LSNs are monotonic across resets; only the file restarts.
	if l.Size() != sizeBefore {
		t.Fatalf("reset rewound the LSN: %d -> %d", sizeBefore, l.Size())
	}
	lsn, err := l.Append(EncodeDropTable(2, "u"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= sizeBefore {
		t.Fatalf("post-reset LSN %d not past pre-reset high water %d", lsn, sizeBefore)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var names []string
	err = ReadRecords(dir, func(p []byte) error {
		rec, err := DecodeRecord(p)
		if err != nil {
			return err
		}
		names = append(names, rec.(*DropTableRecord).Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "u" {
		t.Fatalf("after reset replay saw %v, want [u]", names)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	cp := &Checkpoint{
		Epoch: 99,
		Tables: []TableImage{
			{
				Name: "t",
				Cols: []ColumnDef{
					{Name: "a", Type: sqltypes.Type{ID: sqltypes.TInt}},
					{Name: "b", Type: sqltypes.Type{ID: sqltypes.TVarChar, Prec: 30}},
				},
				Indexes: []IndexDef{{Column: "a", Ordered: true}, {Column: "b"}},
				Slots: [][]sqltypes.Value{
					{sqltypes.NewInt(1), sqltypes.NewString("one")},
					nil, // dead slot must survive the round trip (rid stability)
					{sqltypes.NewInt(3), sqltypes.Null},
				},
			},
			{Name: "empty", Cols: []ColumnDef{{Name: "x", Type: sqltypes.Type{ID: sqltypes.TFloat}}}},
		},
	}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip mismatch:\ngot  %#v\nwant %#v", got, cp)
	}
	// Overwrite is atomic: a second checkpoint replaces the first.
	cp2 := &Checkpoint{Epoch: 100}
	if err := WriteCheckpoint(dir, cp2); err != nil {
		t.Fatal(err)
	}
	got, _, err = ReadCheckpoint(dir)
	if err != nil || got.Epoch != 100 {
		t.Fatalf("second checkpoint: %v %v", got, err)
	}
}

func TestSyncModeParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
	}{{"always", SyncAlways}, {"group", SyncGroup}, {"off", SyncOff}} {
		m, err := ParseSyncMode(tc.in)
		if err != nil || m != tc.want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", tc.in, m, err)
		}
		if m.String() != tc.in {
			t.Fatalf("String() = %q, want %q", m.String(), tc.in)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
