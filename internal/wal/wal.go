package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// SyncMode controls when appended records are forced to stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs inside every Append: maximum durability, one
	// fsync per commit, no amortization.
	SyncAlways SyncMode = iota
	// SyncGroup buffers appends and fsyncs in WaitDurable with a
	// leader/follower protocol: the first waiter flushes and syncs
	// everything buffered so far while later waiters park, so one fsync
	// covers every commit that arrived during the previous one.
	SyncGroup
	// SyncOff writes to the OS but never fsyncs; a crash can lose the
	// tail, a graceful shutdown loses nothing.
	SyncOff
)

// ParseSyncMode parses the -wal-sync flag values always|group|off.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want always, group, or off)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

// LogPath returns the log file path inside a data directory.
func LogPath(dir string) string { return filepath.Join(dir, "wal.log") }

// frameOverhead is the per-record framing cost: 4-byte length + 4-byte CRC.
const frameOverhead = 8

// maxRecordLen bounds a single record; anything larger in the file is
// treated as corruption.
const maxRecordLen = 1 << 30

// Log is the append-only write-ahead log. Appends assign monotonically
// increasing LSNs (byte offsets past the framed record); WaitDurable
// blocks until everything up to an LSN is stable per the sync mode.
type Log struct {
	mode SyncMode

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	buf      []byte // framed but unwritten bytes (SyncGroup / SyncOff)
	appended uint64 // LSN high-water mark: bytes framed so far
	synced   uint64 // LSN up to which the file is durable
	syncing  bool   // a leader is flushing outside the lock
	err      error  // sticky I/O error; fails all future operations

	records atomic.Int64 // records framed over the log's lifetime
	fsyncs  atomic.Int64 // fsync calls issued (inline or by a group leader)
}

// Stats is a point-in-time copy of the log's cumulative counters.
type Stats struct {
	AppendedBytes uint64 // LSN high-water mark (bytes framed, lifetime)
	SyncedBytes   uint64 // durable up to this LSN
	Records       int64  // records appended
	Fsyncs        int64  // fsync calls issued
}

// StatsSnapshot returns the log's cumulative counters.
func (l *Log) StatsSnapshot() Stats {
	l.mu.Lock()
	appended, synced := l.appended, l.synced
	l.mu.Unlock()
	return Stats{
		AppendedBytes: appended,
		SyncedBytes:   synced,
		Records:       l.records.Load(),
		Fsyncs:        l.fsyncs.Load(),
	}
}

// OpenLog opens (creating if needed) the log file in dir.
func OpenLog(dir string, mode SyncMode) (*Log, error) {
	f, err := os.OpenFile(LogPath(dir), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{mode: mode, f: f, appended: uint64(size), synced: uint64(size)}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// Mode returns the log's sync mode.
func (l *Log) Mode() SyncMode { return l.mode }

// Append frames payload into the log and returns its LSN. In SyncAlways
// mode the record is durable on return; otherwise durability is deferred
// to WaitDurable/Flush.
func (l *Log) Append(payload []byte) (uint64, error) {
	frame := make([]byte, frameOverhead, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.appended += uint64(len(frame))
	l.records.Add(1)
	lsn := l.appended
	if l.mode == SyncAlways {
		if _, err := l.f.Write(frame); err == nil {
			l.fsyncs.Add(1)
			if err := l.f.Sync(); err != nil {
				l.err = err
			}
		} else {
			l.err = err
		}
		if l.err != nil {
			return 0, l.err
		}
		l.synced = lsn
		return lsn, nil
	}
	l.buf = append(l.buf, frame...)
	return lsn, nil
}

// WaitDurable blocks until the log is durable up to lsn. In SyncGroup mode
// the first caller to arrive becomes the leader: it writes and fsyncs the
// whole buffer while later callers wait on the condition variable, so one
// fsync acknowledges every commit buffered behind it.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.synced >= lsn {
			return nil
		}
		if !l.syncing {
			l.flushLocked()
			l.cond.Broadcast()
			continue
		}
		l.cond.Wait()
	}
}

// flushLocked writes the pending buffer (and fsyncs unless SyncOff),
// releasing the lock around the I/O. Callers must hold l.mu; the leader
// flag keeps concurrent flushes out.
func (l *Log) flushLocked() {
	l.syncing = true
	buf := l.buf
	l.buf = nil
	target := l.appended
	l.mu.Unlock()
	var err error
	if len(buf) > 0 {
		_, err = l.f.Write(buf)
	}
	if err == nil && l.mode != SyncOff {
		l.fsyncs.Add(1)
		err = l.f.Sync()
	}
	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.err = err
	} else if target > l.synced {
		l.synced = target
	}
}

// Flush writes and (unless SyncOff) fsyncs everything appended so far.
// Used by graceful shutdown and checkpointing.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.synced >= l.appended && len(l.buf) == 0 {
			return nil
		}
		if !l.syncing {
			l.flushLocked()
			l.cond.Broadcast()
			continue
		}
		l.cond.Wait()
	}
}

// Reset truncates the log file to empty after flushing everything pending.
// Called after a checkpoint has made the logged history redundant. LSNs
// keep counting monotonically across resets — only the physical file
// restarts — so a WaitDurable caller can never be stranded by a
// concurrent reset.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.synced >= l.appended && len(l.buf) == 0 && !l.syncing {
			break
		}
		if !l.syncing {
			l.flushLocked()
			l.cond.Broadcast()
			continue
		}
		l.cond.Wait()
	}
	if err := l.f.Truncate(0); err != nil {
		l.err = err
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = err
		return err
	}
	if l.mode != SyncOff {
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
	}
	return nil
}

// Size returns the LSN high-water mark (bytes framed over the log's
// lifetime; not the current file size, which restarts at each Reset).
func (l *Log) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	flushErr := l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	closeErr := l.f.Close()
	if flushErr != nil && !errors.Is(flushErr, os.ErrClosed) {
		return flushErr
	}
	return closeErr
}

// ReadRecords replays every intact record in the log file at dir, invoking
// fn on each payload in append order. A truncated or corrupt frame — the
// torn tail a crash can leave — ends the replay cleanly; an error from fn
// aborts it.
func ReadRecords(dir string, fn func(payload []byte) error) error {
	f, err := os.Open(LogPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	header := make([]byte, frameOverhead)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			return nil // clean EOF or torn header: end of intact log
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n > maxRecordLen {
			return nil // corrupt length: treat as torn tail
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil // corrupt payload
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}
