package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// A checkpoint is a full image of every table at one commit epoch, written
// atomically (tmp file + fsync + rename). After a checkpoint the log can
// be reset; recovery loads the checkpoint and replays only records with a
// later epoch. Dead slots are preserved in the image so slot ids — which
// the log's mutation records address — stay stable across restarts.

// checkpointMagic identifies the file and its format version. Version 2
// added a kind byte per index entry; version-1 files still load (their
// indexes decode as hash).
var (
	checkpointMagic   = []byte("AGCP\x02")
	checkpointMagicV1 = []byte("AGCP\x01")
)

// CheckpointPath returns the checkpoint file path inside a data directory.
func CheckpointPath(dir string) string { return filepath.Join(dir, "checkpoint.bin") }

// IndexDef is the serialized definition of one index.
type IndexDef struct {
	Column  string
	Ordered bool
}

// TableImage is the serialized state of one table.
type TableImage struct {
	Name    string
	Cols    []ColumnDef
	Indexes []IndexDef
	Slots   [][]sqltypes.Value // one entry per slot; nil = dead slot
}

// Checkpoint is a full database image at Epoch.
type Checkpoint struct {
	Epoch  uint64
	Tables []TableImage
}

// WriteCheckpoint atomically writes cp into dir.
func WriteCheckpoint(dir string, cp *Checkpoint) error {
	payload := binary.AppendUvarint(nil, cp.Epoch)
	payload = binary.AppendUvarint(payload, uint64(len(cp.Tables)))
	for _, t := range cp.Tables {
		payload = appendString(payload, t.Name)
		payload = binary.AppendUvarint(payload, uint64(len(t.Cols)))
		for _, c := range t.Cols {
			payload = appendString(payload, c.Name)
			payload = appendColumnType(payload, c.Type)
		}
		payload = binary.AppendUvarint(payload, uint64(len(t.Indexes)))
		for _, ix := range t.Indexes {
			payload = appendString(payload, ix.Column)
			if ix.Ordered {
				payload = append(payload, 1)
			} else {
				payload = append(payload, 0)
			}
		}
		payload = binary.AppendUvarint(payload, uint64(len(t.Slots)))
		for _, row := range t.Slots {
			if row == nil {
				payload = append(payload, 0)
				continue
			}
			payload = append(payload, 1)
			payload = storage.AppendRow(payload, row)
		}
	}

	buf := make([]byte, 0, len(checkpointMagic)+frameOverhead+len(payload))
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)

	tmp := CheckpointPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, CheckpointPath(dir)); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadCheckpoint loads the checkpoint in dir. Returns (nil, false, nil)
// when none exists; a malformed file is an error (unlike a torn log tail,
// the checkpoint is written atomically, so corruption is never expected).
func ReadCheckpoint(dir string) (*Checkpoint, bool, error) {
	buf, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	if len(buf) < len(checkpointMagic)+frameOverhead {
		return nil, false, fmt.Errorf("wal: malformed checkpoint header")
	}
	v1 := false
	switch string(buf[:len(checkpointMagic)]) {
	case string(checkpointMagic):
	case string(checkpointMagicV1):
		v1 = true
	default:
		return nil, false, fmt.Errorf("wal: malformed checkpoint header")
	}
	buf = buf[len(checkpointMagic):]
	n := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	payload := buf[frameOverhead:]
	if uint32(len(payload)) != n || crc32.ChecksumIEEE(payload) != sum {
		return nil, false, fmt.Errorf("wal: checkpoint payload corrupt")
	}

	cp := &Checkpoint{}
	cp.Epoch, payload, err = decodeUvarint(payload)
	if err != nil {
		return nil, false, err
	}
	ntables, payload, err := decodeUvarint(payload)
	if err != nil {
		return nil, false, err
	}
	cp.Tables = make([]TableImage, 0, ntables)
	for i := uint64(0); i < ntables; i++ {
		var t TableImage
		t.Name, payload, err = decodeString(payload)
		if err != nil {
			return nil, false, err
		}
		ncols, rest, err := decodeUvarint(payload)
		if err != nil {
			return nil, false, err
		}
		payload = rest
		t.Cols = make([]ColumnDef, 0, ncols)
		for j := uint64(0); j < ncols; j++ {
			var c ColumnDef
			c.Name, payload, err = decodeString(payload)
			if err != nil {
				return nil, false, err
			}
			c.Type, payload, err = decodeColumnType(payload)
			if err != nil {
				return nil, false, err
			}
			t.Cols = append(t.Cols, c)
		}
		nidx, rest, err := decodeUvarint(payload)
		if err != nil {
			return nil, false, err
		}
		payload = rest
		for j := uint64(0); j < nidx; j++ {
			var ix IndexDef
			ix.Column, payload, err = decodeString(payload)
			if err != nil {
				return nil, false, err
			}
			if !v1 {
				if len(payload) < 1 {
					return nil, false, fmt.Errorf("wal: truncated checkpoint index")
				}
				ix.Ordered = payload[0] != 0
				payload = payload[1:]
			}
			t.Indexes = append(t.Indexes, ix)
		}
		nslots, rest, err := decodeUvarint(payload)
		if err != nil {
			return nil, false, err
		}
		payload = rest
		if nslots > 0 {
			t.Slots = make([][]sqltypes.Value, nslots)
		}
		for j := uint64(0); j < nslots; j++ {
			if len(payload) < 1 {
				return nil, false, fmt.Errorf("wal: truncated checkpoint slot")
			}
			present := payload[0] != 0
			payload = payload[1:]
			if present {
				t.Slots[j], payload, err = storage.DecodeRow(payload)
				if err != nil {
					return nil, false, err
				}
			}
		}
		cp.Tables = append(cp.Tables, t)
	}
	return cp, true, nil
}
