// Package wal implements the engine's write-ahead log and checkpoint
// files: the durability half of the transactional storage subsystem.
//
// The log is a single append-only file of framed records:
//
//	[4-byte LE payload length][4-byte LE CRC-32 (IEEE) of payload][payload]
//
// Payloads reuse the engine's binary row codec (internal/storage/rowcodec)
// for row images, so the on-disk format is the same one worktables and the
// wire protocol already speak. Each record carries the commit epoch it
// belongs to; recovery replays records with epoch greater than the last
// checkpoint's epoch, in file order, and stops at the first torn or
// corrupt frame (the tail a crash may leave behind).
//
// Record kinds:
//
//	'C' commit        — epoch + the transaction's logical mutations
//	'T' create table  — epoch + name + column defs
//	'I' create index  — epoch + table + column
//	'D' drop table    — epoch + name
//
// DDL records get their own epoch (Manager.AdvanceEpoch) so a checkpoint
// at epoch E never splits a DDL record at E.
package wal

import (
	"encoding/binary"
	"fmt"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/txn"
)

const (
	recCommit      byte = 'C'
	recCreateTable byte = 'T'
	recCreateIndex byte = 'I'
	recDropTable   byte = 'D'
)

// ColumnDef is the serialized form of one schema column.
type ColumnDef struct {
	Name string
	Type sqltypes.Type
}

// CommitRecord is the redo record of one committed transaction.
type CommitRecord struct {
	Epoch uint64
	Muts  []txn.Mutation
}

// CreateTableRecord logs a CREATE TABLE.
type CreateTableRecord struct {
	Epoch uint64
	Name  string
	Cols  []ColumnDef
}

// CreateIndexRecord logs a CREATE INDEX. Ordered distinguishes ordered
// (range-capable) indexes from hash indexes; logs written before the field
// existed decode as hash.
type CreateIndexRecord struct {
	Epoch   uint64
	Table   string
	Column  string
	Ordered bool
}

// DropTableRecord logs a DROP TABLE.
type DropTableRecord struct {
	Epoch uint64
	Name  string
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < n {
		return "", nil, fmt.Errorf("wal: truncated string")
	}
	return string(buf[w : w+int(n)]), buf[w+int(n):], nil
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, nil, fmt.Errorf("wal: bad uvarint")
	}
	return n, buf[w:], nil
}

// EncodeCommit serializes a commit record payload.
func EncodeCommit(epoch uint64, muts []txn.Mutation) []byte {
	buf := []byte{recCommit}
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		buf = append(buf, byte(m.Op))
		buf = appendString(buf, m.Table)
		rid := m.Rid
		if rid < 0 {
			rid = 0
		}
		buf = binary.AppendUvarint(buf, uint64(rid))
		switch m.Op {
		case txn.MutInsert, txn.MutUpdate:
			buf = storage.AppendRow(buf, m.Row)
		}
	}
	return buf
}

// EncodeCreateTable serializes a CREATE TABLE payload.
func EncodeCreateTable(epoch uint64, name string, cols []ColumnDef) []byte {
	buf := []byte{recCreateTable}
	buf = binary.AppendUvarint(buf, epoch)
	buf = appendString(buf, name)
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendString(buf, c.Name)
		buf = appendColumnType(buf, c.Type)
	}
	return buf
}

// EncodeCreateIndex serializes a CREATE INDEX payload. The index kind is a
// trailing byte: decoders that predate it ignore trailing bytes, and
// records without it decode as hash.
func EncodeCreateIndex(epoch uint64, table, column string, ordered bool) []byte {
	buf := []byte{recCreateIndex}
	buf = binary.AppendUvarint(buf, epoch)
	buf = appendString(buf, table)
	buf = appendString(buf, column)
	if ordered {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// EncodeDropTable serializes a DROP TABLE payload.
func EncodeDropTable(epoch uint64, name string) []byte {
	buf := []byte{recDropTable}
	buf = binary.AppendUvarint(buf, epoch)
	buf = appendString(buf, name)
	return buf
}

func appendColumnType(buf []byte, t sqltypes.Type) []byte {
	buf = append(buf, byte(t.ID))
	buf = binary.AppendUvarint(buf, uint64(t.Prec))
	return binary.AppendUvarint(buf, uint64(t.Scale))
}

func decodeColumnType(buf []byte) (sqltypes.Type, []byte, error) {
	if len(buf) < 1 {
		return sqltypes.Type{}, nil, fmt.Errorf("wal: truncated column type")
	}
	id := sqltypes.TypeID(buf[0])
	prec, buf, err := decodeUvarint(buf[1:])
	if err != nil {
		return sqltypes.Type{}, nil, err
	}
	scale, buf, err := decodeUvarint(buf)
	if err != nil {
		return sqltypes.Type{}, nil, err
	}
	return sqltypes.Type{ID: id, Prec: int(prec), Scale: int(scale)}, buf, nil
}

// DecodeRecord parses one record payload into its typed form:
// *CommitRecord, *CreateTableRecord, *CreateIndexRecord, or
// *DropTableRecord.
func DecodeRecord(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wal: empty record")
	}
	kind := payload[0]
	epoch, buf, err := decodeUvarint(payload[1:])
	if err != nil {
		return nil, err
	}
	switch kind {
	case recCommit:
		n, buf, err := decodeUvarint(buf)
		if err != nil {
			return nil, err
		}
		rec := &CommitRecord{Epoch: epoch, Muts: make([]txn.Mutation, 0, n)}
		for i := uint64(0); i < n; i++ {
			if len(buf) < 1 {
				return nil, fmt.Errorf("wal: truncated mutation")
			}
			m := txn.Mutation{Op: txn.MutOp(buf[0])}
			buf = buf[1:]
			m.Table, buf, err = decodeString(buf)
			if err != nil {
				return nil, err
			}
			rid, rest, err := decodeUvarint(buf)
			if err != nil {
				return nil, err
			}
			m.Rid = int(rid)
			buf = rest
			switch m.Op {
			case txn.MutInsert, txn.MutUpdate:
				m.Row, buf, err = storage.DecodeRow(buf)
				if err != nil {
					return nil, err
				}
			case txn.MutDelete, txn.MutTruncate:
			default:
				return nil, fmt.Errorf("wal: unknown mutation op %d", m.Op)
			}
			rec.Muts = append(rec.Muts, m)
		}
		return rec, nil
	case recCreateTable:
		rec := &CreateTableRecord{Epoch: epoch}
		rec.Name, buf, err = decodeString(buf)
		if err != nil {
			return nil, err
		}
		n, buf, err := decodeUvarint(buf)
		if err != nil {
			return nil, err
		}
		rec.Cols = make([]ColumnDef, 0, n)
		for i := uint64(0); i < n; i++ {
			var c ColumnDef
			c.Name, buf, err = decodeString(buf)
			if err != nil {
				return nil, err
			}
			c.Type, buf, err = decodeColumnType(buf)
			if err != nil {
				return nil, err
			}
			rec.Cols = append(rec.Cols, c)
		}
		return rec, nil
	case recCreateIndex:
		rec := &CreateIndexRecord{Epoch: epoch}
		rec.Table, buf, err = decodeString(buf)
		if err != nil {
			return nil, err
		}
		rec.Column, buf, err = decodeString(buf)
		if err != nil {
			return nil, err
		}
		if len(buf) > 0 {
			rec.Ordered = buf[0] != 0
		}
		return rec, nil
	case recDropTable:
		rec := &DropTableRecord{Epoch: epoch}
		rec.Name, _, err = decodeString(buf)
		if err != nil {
			return nil, err
		}
		return rec, nil
	default:
		return nil, fmt.Errorf("wal: unknown record kind %q", kind)
	}
}
