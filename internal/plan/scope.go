package plan

import (
	"strings"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// colBinding maps a (qualifier, name) pair to an ordinal in the current row.
type colBinding struct {
	Qual string // table alias / binding name; may be ""
	Name string
	Type sqltypes.Type
}

// scope describes the columns visible to expressions at some point in a
// query, with a link to the enclosing query's scope for correlation.
type scope struct {
	parent *scope
	cols   []colBinding
}

func (s *scope) width() int { return len(s.cols) }

// add appends a column binding and returns its ordinal.
func (s *scope) add(qual, name string, t sqltypes.Type) int {
	s.cols = append(s.cols, colBinding{Qual: strings.ToLower(qual), Name: strings.ToLower(name), Type: t})
	return len(s.cols) - 1
}

// concat returns a scope holding a's columns followed by b's (join output),
// keeping a's parent.
func concatScopes(a, b *scope) *scope {
	out := &scope{parent: a.parent}
	out.cols = append(out.cols, a.cols...)
	out.cols = append(out.cols, b.cols...)
	return out
}

// resolution is the result of looking up a column reference.
type resolution struct {
	levelsUp int // 0 = current scope
	ordinal  int
	typ      sqltypes.Type
}

// resolve finds the column named by ref, searching the scope chain outward.
// It returns an error for ambiguous references in a single scope.
func (s *scope) resolve(ref *ast.ColRef) (resolution, error) {
	level := 0
	for cur := s; cur != nil; cur = cur.parent {
		found := -1
		for i, c := range cur.cols {
			if c.Name != ref.Name {
				continue
			}
			if ref.Table != "" && c.Qual != ref.Table {
				continue
			}
			if found >= 0 {
				return resolution{}, errf("ambiguous column reference %q", ref)
			}
			found = i
		}
		if found >= 0 {
			return resolution{levelsUp: level, ordinal: found, typ: cur.cols[found].Type}, nil
		}
		level++
	}
	return resolution{}, errf("unknown column %q", ref)
}

// names returns the output column names of the scope, preferring bare names.
func (s *scope) names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}
