package plan

import (
	"fmt"

	"aggify/internal/ast"
)

// DecorrelateSelect applies the apply-decorrelation rewrite: a correlated
// scalar-aggregate subquery in the projection,
//
//	SELECT t.a, (SELECT AGG(...) FROM s WHERE s.k = t.a AND p) FROM t
//
// becomes a left join against a grouped aggregation,
//
//	SELECT t.a, CASE WHEN d.__m IS NULL THEN __agg_empty('agg') ELSE d.__v END
//	FROM t LEFT JOIN (SELECT s.k AS __k, 1 AS __m, AGG(...) AS __v
//	                  FROM s WHERE p GROUP BY s.k) d ON d.__k = t.a
//
// This is the rewrite that turns the Aggify+Froid pipeline's per-row apply
// into a set-oriented plan — the source of the paper's Q13-style orders-of-
// magnitude wins, and of Table 2's "Aggify+ reads more pages but runs
// faster" effect. Join misses are patched to the aggregate's empty-input
// value (Init+Terminate), evaluated by the __agg_empty pseudo-function, so
// the semantics match the original apply exactly (COUNT(*) = 0 included).
//
// The rewrite is applied when safe and left alone otherwise; it never
// changes results. It returns a rewritten copy (or q itself when nothing
// applied).
func DecorrelateSelect(c *compiler, q *ast.Select) *ast.Select {
	// Only rewrite blocks with a single FROM unit and no aggregation of
	// their own; this covers the UDF-inlining pattern the paper targets.
	if len(q.From) != 1 || len(q.GroupBy) > 0 || q.Union != nil || len(q.With) > 0 || q.OrderEnforced {
		return q
	}
	out := *q
	items := make([]ast.SelectItem, len(q.Items))
	copy(items, q.Items)
	out.Items = items
	from := q.From[0]
	changed := false
	serial := 0
	// cache deduplicates textually identical subqueries (tuple_get(S, 0)
	// and tuple_get(S, 1) from the Aggify guarded rewrite share one join).
	cache := map[string]ast.Expr{}
	for i, it := range items {
		if it.Star || it.Expr == nil {
			continue
		}
		newExpr, join, ok := c.tryDecorrelate(it.Expr, &serial, from, cache)
		if !ok {
			continue
		}
		items[i] = ast.SelectItem{Expr: newExpr, Alias: it.Alias}
		from = join
		changed = true
	}
	if !changed {
		return q
	}
	out.From = []ast.TableExpr{from}
	return &out
}

// tryDecorrelate searches e for a decorrelatable scalar subquery. On
// success it returns the rewritten expression and the join to splice in.
// It rewrites at most one subquery per call (the caller loops via serial
// numbering across items; nested multiple subqueries in one expression are
// handled by repeated application).
func (c *compiler) tryDecorrelate(e ast.Expr, serial *int, left ast.TableExpr, cache map[string]ast.Expr) (ast.Expr, ast.TableExpr, bool) {
	var target *ast.Subquery
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if target != nil {
			return false
		}
		if sq, ok := x.(*ast.Subquery); ok && !sq.Exists {
			target = sq
			return false
		}
		return true
	})
	if target == nil {
		return nil, nil, false
	}
	var repl ast.Expr
	join := left
	if cached, ok := cache[target.String()]; ok {
		repl = ast.CloneExpr(cached)
	} else {
		var ok bool
		repl, join, ok = c.decorrelateSubquery(target, serial, left)
		if !ok {
			return nil, nil, false
		}
		cache[target.String()] = repl
	}
	newExpr := replaceExpr(e, target, repl)
	// Try to decorrelate further subqueries within the same item.
	if again, join2, ok2 := c.tryDecorrelate(newExpr, serial, join, cache); ok2 {
		return again, join2, true
	}
	return newExpr, join, true
}

// replaceExpr returns e with the (pointer-identical) node old replaced by
// repl.
func replaceExpr(e ast.Expr, old, repl ast.Expr) ast.Expr {
	if e == old {
		return repl
	}
	switch x := e.(type) {
	case *ast.BinExpr:
		return &ast.BinExpr{Op: x.Op, L: replaceExpr(x.L, old, repl), R: replaceExpr(x.R, old, repl)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, E: replaceExpr(x.E, old, repl)}
	case *ast.IsNullExpr:
		return &ast.IsNullExpr{E: replaceExpr(x.E, old, repl), Negate: x.Negate}
	case *ast.CaseExpr:
		out := &ast.CaseExpr{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{
				Cond: replaceExpr(w.Cond, old, repl),
				Then: replaceExpr(w.Then, old, repl),
			})
		}
		if x.Else != nil {
			out.Else = replaceExpr(x.Else, old, repl)
		}
		return out
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, replaceExpr(a, old, repl))
		}
		return out
	case *ast.BetweenExpr:
		return &ast.BetweenExpr{
			E:  replaceExpr(x.E, old, repl),
			Lo: replaceExpr(x.Lo, old, repl),
			Hi: replaceExpr(x.Hi, old, repl), Negate: x.Negate,
		}
	case *ast.InExpr:
		out := &ast.InExpr{E: replaceExpr(x.E, old, repl), Negate: x.Negate, Query: x.Query}
		for _, it := range x.List {
			out.List = append(out.List, replaceExpr(it, old, repl))
		}
		return out
	default:
		return e
	}
}

// decorrelateSubquery attempts the rewrite for one scalar subquery.
func (c *compiler) decorrelateSubquery(sq *ast.Subquery, serial *int, left ast.TableExpr) (ast.Expr, ast.TableExpr, bool) {
	s := ast.CloneSelect(sq.Query)
	if len(s.With) > 0 || s.Union != nil || s.Distinct || s.Top != nil || s.OrderEnforced || len(s.GroupBy) > 0 || s.Having != nil {
		return nil, nil, false
	}
	flattenDerived(s)
	if len(s.Items) != 1 || s.Items[0].Star {
		return nil, nil, false
	}
	agg, ok := s.Items[0].Expr.(*ast.FuncCall)
	if !ok {
		return nil, nil, false
	}
	spec, isAgg := c.cat.AggSpec(agg.Name)
	if !isAgg || spec.OrderSensitive {
		return nil, nil, false
	}

	// Column names available from the subquery's own FROM units.
	units := make([]*fromUnit, len(s.From))
	for i, te := range s.From {
		cols, err := c.outputNames(te, nil)
		if err != nil {
			return nil, nil, false
		}
		units[i] = &fromUnit{pos: i, te: te, binding: ast.BindingName(te), cols: cols}
	}
	localCol := func(cr *ast.ColRef) bool {
		for _, u := range units {
			if u.hasCol(cr) {
				return true
			}
		}
		return false
	}
	allLocal := func(e ast.Expr) bool {
		local := true
		ast.WalkExpr(e, func(x ast.Expr) bool {
			if cr, ok := x.(*ast.ColRef); ok && !localCol(cr) {
				local = false
			}
			return true
		})
		return local
	}

	// Split WHERE into correlation equalities (local col = outer expr) and
	// local residue.
	var corrCols []*ast.ColRef
	var corrOuter []ast.Expr
	var localPreds []ast.Expr
	for _, cj := range splitConjuncts(s.Where) {
		if allLocal(cj) {
			localPreds = append(localPreds, cj)
			continue
		}
		l, r, isEq := eqSides(cj)
		if !isEq {
			return nil, nil, false
		}
		var col *ast.ColRef
		var outer ast.Expr
		if cr, ok := l.(*ast.ColRef); ok && localCol(cr) && !containsLocalRef(r, localCol) {
			col, outer = cr, r
		} else if cr, ok := r.(*ast.ColRef); ok && localCol(cr) && !containsLocalRef(l, localCol) {
			col, outer = cr, l
		} else {
			return nil, nil, false
		}
		// The outer side must reference at least one column (otherwise it
		// would be local already) and no subqueries of its own.
		if ast.HasSubquery(outer) {
			return nil, nil, false
		}
		corrCols = append(corrCols, col)
		corrOuter = append(corrOuter, outer)
	}
	if len(corrCols) == 0 {
		return nil, nil, false
	}

	// Substitute outer expressions with the (join-equal) correlation columns
	// inside the aggregate arguments; afterwards everything must be local.
	substArgs := make([]ast.Expr, len(agg.Args))
	for i, a := range agg.Args {
		sub := ast.CloneExpr(a)
		for j, outer := range corrOuter {
			sub = substituteByString(sub, outer.String(), corrCols[j])
		}
		if !allLocal(sub) {
			return nil, nil, false
		}
		substArgs[i] = sub
	}
	for _, p := range localPreds {
		if !allLocal(p) {
			return nil, nil, false
		}
	}

	*serial++
	alias := fmt.Sprintf("__dcor%d", *serial)

	derived := &ast.Select{From: s.From}
	var groupBy []ast.Expr
	var on ast.Expr
	for j, col := range corrCols {
		kname := fmt.Sprintf("__k%d", j)
		derived.Items = append(derived.Items, ast.SelectItem{Expr: col, Alias: kname})
		groupBy = append(groupBy, col)
		on = ast.And(on, ast.Eq(ast.QCol(alias, kname), corrOuter[j]))
	}
	derived.Items = append(derived.Items,
		ast.SelectItem{Expr: ast.IntLit(1), Alias: "__m"},
		ast.SelectItem{Expr: &ast.FuncCall{Name: agg.Name, Args: substArgs, Star: agg.Star}, Alias: "__v"},
	)
	derived.GroupBy = groupBy
	derived.Where = ast.And(localPreds...)

	join := &ast.Join{
		Kind: ast.JoinLeft,
		L:    left,
		R:    &ast.SubqueryRef{Query: derived, Alias: alias},
		On:   on,
	}
	repl := &ast.CaseExpr{
		Whens: []ast.WhenClause{{
			Cond: &ast.IsNullExpr{E: ast.QCol(alias, "__m")},
			Then: &ast.FuncCall{Name: "__agg_empty", Args: []ast.Expr{ast.StrLit(agg.Name)}},
		}},
		Else: ast.QCol(alias, "__v"),
	}
	return repl, join, true
}

func containsLocalRef(e ast.Expr, localCol func(*ast.ColRef) bool) bool {
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if cr, ok := x.(*ast.ColRef); ok && localCol(cr) {
			found = true
		}
		return true
	})
	return found
}

// substituteByString replaces every subtree of e whose String() rendering
// equals key with repl (used to replace outer correlation expressions with
// the join-equal local column).
func substituteByString(e ast.Expr, key string, repl ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if e.String() == key {
		return ast.CloneExpr(repl)
	}
	switch x := e.(type) {
	case *ast.BinExpr:
		return &ast.BinExpr{Op: x.Op, L: substituteByString(x.L, key, repl), R: substituteByString(x.R, key, repl)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, E: substituteByString(x.E, key, repl)}
	case *ast.IsNullExpr:
		return &ast.IsNullExpr{E: substituteByString(x.E, key, repl), Negate: x.Negate}
	case *ast.CaseExpr:
		out := &ast.CaseExpr{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{
				Cond: substituteByString(w.Cond, key, repl),
				Then: substituteByString(w.Then, key, repl),
			})
		}
		if x.Else != nil {
			out.Else = substituteByString(x.Else, key, repl)
		}
		return out
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, substituteByString(a, key, repl))
		}
		return out
	case *ast.BetweenExpr:
		return &ast.BetweenExpr{
			E:  substituteByString(x.E, key, repl),
			Lo: substituteByString(x.Lo, key, repl),
			Hi: substituteByString(x.Hi, key, repl), Negate: x.Negate,
		}
	default:
		return e
	}
}

// flattenDerived inlines trivial derived tables (pure projections without
// aggregation, DISTINCT, TOP, set operations, or CTEs) into the enclosing
// FROM list, exposing their predicates — in particular the correlation
// equalities that the Aggify rewrite leaves inside its "FROM (Q) Q"
// sub-select (Eq. 5).
func flattenDerived(s *ast.Select) {
	var newFrom []ast.TableExpr
	for _, te := range s.From {
		sr, ok := te.(*ast.SubqueryRef)
		if !ok || !flattenable(sr.Query) {
			newFrom = append(newFrom, te)
			continue
		}
		inner := sr.Query
		// Build the substitution: alias.name / name -> inner item expr.
		subst := map[string]ast.Expr{}
		ambiguous := map[string]bool{}
		allPlain := true
		for i, it := range inner.Items {
			if it.Star {
				allPlain = false
				break
			}
			name := it.Alias
			if name == "" {
				if cr, isCol := it.Expr.(*ast.ColRef); isCol {
					name = cr.Name
				} else {
					name = fmt.Sprintf("col%d", i+1)
				}
			}
			if _, dup := subst[name]; dup {
				ambiguous[name] = true
			}
			subst[name] = it.Expr
		}
		if !allPlain {
			newFrom = append(newFrom, te)
			continue
		}
		replace := func(e ast.Expr) ast.Expr {
			return mapColRefs(e, func(cr *ast.ColRef) ast.Expr {
				if cr.Table != "" && cr.Table != sr.Alias {
					return cr
				}
				if ambiguous[cr.Name] {
					return cr
				}
				if repl, ok := subst[cr.Name]; ok {
					return ast.CloneExpr(repl)
				}
				return cr
			})
		}
		for i := range s.Items {
			if !s.Items[i].Star {
				s.Items[i].Expr = replace(s.Items[i].Expr)
			}
		}
		if s.Where != nil {
			s.Where = replace(s.Where)
		}
		newFrom = append(newFrom, inner.From...)
		s.Where = ast.And(s.Where, inner.Where)
	}
	s.From = newFrom
}

func flattenable(q *ast.Select) bool {
	if len(q.With) > 0 || q.Union != nil || q.Distinct || q.Top != nil ||
		len(q.GroupBy) > 0 || q.Having != nil || len(q.OrderBy) > 0 || q.OrderEnforced {
		return false
	}
	if len(q.From) == 0 {
		return false
	}
	// No aggregate-looking calls in the projection (conservative: any
	// function call whose arguments reference columns could be an
	// aggregate; only plain items are flattened).
	for _, it := range q.Items {
		if it.Star {
			return false
		}
	}
	return true
}

// mapColRefs rewrites column references through fn.
func mapColRefs(e ast.Expr, fn func(*ast.ColRef) ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.ColRef:
		return fn(x)
	case *ast.BinExpr:
		return &ast.BinExpr{Op: x.Op, L: mapColRefs(x.L, fn), R: mapColRefs(x.R, fn)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, E: mapColRefs(x.E, fn)}
	case *ast.IsNullExpr:
		return &ast.IsNullExpr{E: mapColRefs(x.E, fn), Negate: x.Negate}
	case *ast.CaseExpr:
		out := &ast.CaseExpr{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{Cond: mapColRefs(w.Cond, fn), Then: mapColRefs(w.Then, fn)})
		}
		if x.Else != nil {
			out.Else = mapColRefs(x.Else, fn)
		}
		return out
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, mapColRefs(a, fn))
		}
		return out
	case *ast.BetweenExpr:
		return &ast.BetweenExpr{E: mapColRefs(x.E, fn), Lo: mapColRefs(x.Lo, fn), Hi: mapColRefs(x.Hi, fn), Negate: x.Negate}
	case *ast.InExpr:
		out := &ast.InExpr{E: mapColRefs(x.E, fn), Negate: x.Negate, Query: x.Query}
		for _, it := range x.List {
			out.List = append(out.List, mapColRefs(it, fn))
		}
		return out
	default:
		// Subqueries and literals pass through unchanged; correlation into
		// flattened derived tables from deeper subqueries is left intact
		// (names remain valid since the inner FROM units are spliced in).
		return e
	}
}
