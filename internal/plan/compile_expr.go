package plan

import (
	"math"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// compiler holds the immutable state of one compilation.
type compiler struct {
	cat  Catalog
	opts Options
	// slots, when non-nil, resolves variable references to Ctx.VarSlots
	// indexes at compile time (compiled procedural blocks).
	slots map[string]int
	// marks and selMarks carry fired-rewrite-rule annotations from the
	// logical rewrite pass (rewrite.go) to the physical explain tree, keyed
	// by the exact predicate / derived-table-body pointers lowering emitted.
	marks    map[ast.Expr]string
	selMarks map[*ast.Select]string
	// accessHints pins the access path choose_access_path selected for a
	// base-table scan, keyed by the TableRef lowering emitted; joinMarks
	// carries reorder_joins EXPLAIN suffixes, keyed by the lowered Join.
	accessHints map[*ast.TableRef]*accessHint
	joinMarks   map[*ast.Join]string
}

// stampingCatalog wraps a Catalog and records the stats version of every
// base table a compile resolves — the staleness stamps the engine plan
// cache checks on each lookup. Late-bound tables (@/# temp tables) are not
// stamped; their contents are session-local and resolved at execution.
type stampingCatalog struct {
	inner Catalog
	seen  map[*storage.Table]uint64
}

func (s *stampingCatalog) ResolveTable(name string) (*storage.Table, error) {
	t, err := s.inner.ResolveTable(name)
	if err == nil && t != nil && !lateBound(name) {
		if _, ok := s.seen[t]; !ok {
			s.seen[t] = t.StatsVersion()
		}
	}
	return t, err
}

func (s *stampingCatalog) AggSpec(name string) (*exec.AggSpec, bool) { return s.inner.AggSpec(name) }
func (s *stampingCatalog) ScalarFuncExists(name string) bool         { return s.inner.ScalarFuncExists(name) }

func (s *stampingCatalog) stamps() []TableStamp {
	if len(s.seen) == 0 {
		return nil
	}
	out := make([]TableStamp, 0, len(s.seen))
	for t, v := range s.seen {
		out = append(out, TableStamp{Table: t, StatsVersion: v})
	}
	return out
}

// cteEnv is a lexically-scoped chain of CTE bindings.
type cteEnv struct {
	parent  *cteEnv
	binding *cteBinding
}

func (e *cteEnv) lookup(name string) *cteBinding {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.binding.name == name {
			return cur.binding
		}
	}
	return nil
}

// cteBinding binds a CTE name to a compiled instantiation strategy.
type cteBinding struct {
	name string
	cols []colBinding
	// instantiate creates a fresh subtree computing the CTE.
	instantiate func() (opBuilder, *Node, error)
	// deltaKey, when non-nil, marks the binding as the in-progress recursive
	// CTE: references compile to DeltaScanOp over this key.
	deltaKey any
}

// compileExpr compiles an expression against a row scope.
func (c *compiler) compileExpr(e ast.Expr, sc *scope, env *cteEnv) (exec.Scalar, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return litScalar(x.Val), nil
	case *ast.ColRef:
		res, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		if res.levelsUp == 0 {
			return exec.ColScalar(res.ordinal), nil
		}
		return exec.OuterColScalar(res.levelsUp, res.ordinal), nil
	case *ast.VarRef:
		name := x.Name
		if c.slots != nil {
			idx, ok := c.slots[name]
			if !ok {
				return nil, errf("slot compilation: unknown variable %s", name)
			}
			return func(ctx *exec.Ctx, _ exec.Row) (sqltypes.Value, error) {
				if idx >= len(ctx.VarSlots) {
					return sqltypes.Null, errf("variable slot %d out of range", idx)
				}
				return ctx.VarSlots[idx], nil
			}, nil
		}
		return func(ctx *exec.Ctx, _ exec.Row) (sqltypes.Value, error) {
			if ctx.Vars == nil {
				return sqltypes.Null, errf("variable %s referenced outside a procedural context", name)
			}
			v, ok := ctx.Vars(name)
			if !ok {
				return sqltypes.Null, errf("undeclared variable %s", name)
			}
			return v, nil
		}, nil
	case *ast.ParamRef:
		idx := x.Index
		return func(ctx *exec.Ctx, _ exec.Row) (sqltypes.Value, error) {
			if idx < 0 || idx >= len(ctx.Params) {
				return sqltypes.Null, errf("parameter %d not bound", idx+1)
			}
			return ctx.Params[idx], nil
		}, nil
	case *ast.BinExpr:
		l, err := c.compileExpr(x.L, sc, env)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(x.R, sc, env)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			// Short-circuit AND/OR where the left side decides.
			switch op {
			case sqltypes.OpAnd:
				if lv.Kind() == sqltypes.KindBool && !lv.Bool() {
					return sqltypes.NewBool(false), nil
				}
			case sqltypes.OpOr:
				if lv.Truthy() {
					return sqltypes.NewBool(true), nil
				}
			}
			rv, err := r(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.Apply(op, lv, rv)
		}, nil
	case *ast.UnaryExpr:
		inner, err := c.compileExpr(x.E, sc, env)
		if err != nil {
			return nil, err
		}
		neg := x.Op == '-'
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			v, err := inner(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if neg {
				return sqltypes.Negate(v)
			}
			return sqltypes.Not(v), nil
		}, nil
	case *ast.IsNullExpr:
		inner, err := c.compileExpr(x.E, sc, env)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			v, err := inner(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(v.IsNull() != negate), nil
		}, nil
	case *ast.CaseExpr:
		type arm struct{ cond, then exec.Scalar }
		arms := make([]arm, len(x.Whens))
		for i, w := range x.Whens {
			cond, err := c.compileExpr(w.Cond, sc, env)
			if err != nil {
				return nil, err
			}
			then, err := c.compileExpr(w.Then, sc, env)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{cond, then}
		}
		var elseS exec.Scalar
		if x.Else != nil {
			var err error
			if elseS, err = c.compileExpr(x.Else, sc, env); err != nil {
				return nil, err
			}
		}
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			for _, a := range arms {
				v, err := a.cond(ctx, row)
				if err != nil {
					return sqltypes.Null, err
				}
				if v.Truthy() {
					return a.then(ctx, row)
				}
			}
			if elseS != nil {
				return elseS(ctx, row)
			}
			return sqltypes.Null, nil
		}, nil
	case *ast.BetweenExpr:
		ev, err := c.compileExpr(x.E, sc, env)
		if err != nil {
			return nil, err
		}
		lo, err := c.compileExpr(x.Lo, sc, env)
		if err != nil {
			return nil, err
		}
		hi, err := c.compileExpr(x.Hi, sc, env)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			v, err := ev(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			lv, err := lo(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			hv, err := hi(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			ge, err := sqltypes.Apply(sqltypes.OpGe, v, lv)
			if err != nil {
				return sqltypes.Null, err
			}
			le, err := sqltypes.Apply(sqltypes.OpLe, v, hv)
			if err != nil {
				return sqltypes.Null, err
			}
			res, err := sqltypes.Apply(sqltypes.OpAnd, ge, le)
			if err != nil {
				return sqltypes.Null, err
			}
			if negate {
				res = sqltypes.Not(res)
			}
			return res, nil
		}, nil
	case *ast.InExpr:
		return c.compileIn(x, sc, env)
	case *ast.FuncCall:
		return c.compileFunc(x, sc, env)
	case *ast.Subquery:
		return c.compileSubquery(x, sc, env)
	}
	return nil, errf("cannot compile expression %T", e)
}

// compileIn compiles both list and subquery IN forms with SQL's three-valued
// semantics: TRUE on any match; otherwise NULL if any comparison was
// unknown; otherwise FALSE.
func (c *compiler) compileIn(x *ast.InExpr, sc *scope, env *cteEnv) (exec.Scalar, error) {
	ev, err := c.compileExpr(x.E, sc, env)
	if err != nil {
		return nil, err
	}
	negate := x.Negate
	finish := func(matched, sawNull bool) sqltypes.Value {
		switch {
		case matched:
			return sqltypes.NewBool(!negate)
		case sawNull:
			return sqltypes.Null
		default:
			return sqltypes.NewBool(negate)
		}
	}
	if x.Query == nil {
		items := make([]exec.Scalar, len(x.List))
		for i, it := range x.List {
			if items[i], err = c.compileExpr(it, sc, env); err != nil {
				return nil, err
			}
		}
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			v, err := ev(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			sawNull := false
			for _, it := range items {
				iv, err := it(ctx, row)
				if err != nil {
					return sqltypes.Null, err
				}
				cv, ok := sqltypes.Compare(v, iv)
				if !ok {
					sawNull = true
					continue
				}
				if cv == 0 {
					return finish(true, false), nil
				}
			}
			return finish(false, sawNull), nil
		}, nil
	}
	builder, _, _, err := c.compileSelect(x.Query, sc, env)
	if err != nil {
		return nil, err
	}
	return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
		v, err := ev(ctx, row)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		ctx.OuterRows = append(ctx.OuterRows, row)
		rows, err := exec.Drain(ctx, builder(&buildCtx{}))
		ctx.OuterRows = ctx.OuterRows[:len(ctx.OuterRows)-1]
		if err != nil {
			return sqltypes.Null, err
		}
		sawNull := false
		for _, r := range rows {
			if len(r) != 1 {
				return sqltypes.Null, errf("IN subquery must return one column")
			}
			cv, ok := sqltypes.Compare(v, r[0])
			if !ok {
				sawNull = true
				continue
			}
			if cv == 0 {
				return finish(true, false), nil
			}
		}
		return finish(false, sawNull), nil
	}, nil
}

// compileSubquery compiles scalar and EXISTS subqueries; scalar subqueries
// returning multiple columns yield a tuple value (used by the Aggify
// multi-live-variable rewrite).
func (c *compiler) compileSubquery(x *ast.Subquery, sc *scope, env *cteEnv) (exec.Scalar, error) {
	builder, cols, _, err := c.compileSelect(x.Query, sc, env)
	if err != nil {
		return nil, err
	}
	if x.Exists {
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			ctx.OuterRows = append(ctx.OuterRows, row)
			op := builder(&buildCtx{})
			found := false
			err := op.Open(ctx)
			if err == nil {
				var r exec.Row
				r, err = op.Next(ctx)
				found = r != nil
			}
			op.Close()
			ctx.OuterRows = ctx.OuterRows[:len(ctx.OuterRows)-1]
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(found), nil
		}, nil
	}
	ncols := len(cols)
	return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
		ctx.OuterRows = append(ctx.OuterRows, row)
		rows, err := exec.Drain(ctx, builder(&buildCtx{}))
		ctx.OuterRows = ctx.OuterRows[:len(ctx.OuterRows)-1]
		if err != nil {
			return sqltypes.Null, err
		}
		switch {
		case len(rows) == 0:
			return sqltypes.Null, nil
		case len(rows) > 1:
			return sqltypes.Null, errf("scalar subquery returned %d rows", len(rows))
		case ncols == 1:
			return rows[0][0], nil
		default:
			return sqltypes.NewTuple(rows[0]), nil
		}
	}, nil
}

// compileFunc dispatches scalar function calls: built-in scalar functions
// first, then user-defined functions through the context hook. Aggregate
// calls reaching this point are a placement error.
func (c *compiler) compileFunc(x *ast.FuncCall, sc *scope, env *cteEnv) (exec.Scalar, error) {
	name := strings.ToLower(x.Name)
	if name == "__agg_empty" {
		// Decorrelation miss-default: the named aggregate's Init+Terminate
		// value (its result over empty input).
		if len(x.Args) != 1 {
			return nil, errf("__agg_empty expects the aggregate name")
		}
		lit, ok := x.Args[0].(*ast.Literal)
		if !ok || lit.Val.Kind() != sqltypes.KindString {
			return nil, errf("__agg_empty expects a literal aggregate name")
		}
		spec, ok := c.cat.AggSpec(lit.Val.Str())
		if !ok {
			return nil, errf("__agg_empty: unknown aggregate %s", lit.Val.Str())
		}
		return func(ctx *exec.Ctx, _ exec.Row) (sqltypes.Value, error) {
			agg := spec.New()
			agg.Reset()
			return agg.Result(ctx)
		}, nil
	}
	if _, isAgg := c.cat.AggSpec(name); isAgg || exec.IsBuiltinAgg(name) {
		return nil, errf("aggregate %s is not allowed in this context", name)
	}
	args := make([]exec.Scalar, len(x.Args))
	for i, a := range x.Args {
		s, err := c.compileExpr(a, sc, env)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	if fn, ok := builtinScalarFuncs[name]; ok {
		return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
			vals := make([]sqltypes.Value, len(args))
			for i, a := range args {
				v, err := a(ctx, row)
				if err != nil {
					return sqltypes.Null, err
				}
				vals[i] = v
			}
			return fn(vals)
		}, nil
	}
	if !c.cat.ScalarFuncExists(name) {
		return nil, errf("unknown function %s", name)
	}
	return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
		if ctx.CallFunc == nil {
			return sqltypes.Null, errf("no function invoker installed for %s", name)
		}
		vals := make([]sqltypes.Value, len(args))
		for i, a := range args {
			v, err := a(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			vals[i] = v
		}
		return ctx.CallFunc(name, vals)
	}, nil
}

// builtinScalarFuncs are the engine's built-in scalar functions.
var builtinScalarFuncs = map[string]func([]sqltypes.Value) (sqltypes.Value, error){
	"abs":     numeric1(func(f float64) float64 { return math.Abs(f) }),
	"ceiling": numeric1(math.Ceil),
	"floor":   numeric1(math.Floor),
	"sqrt":    numeric1(math.Sqrt),
	"round": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return sqltypes.Null, errf("round expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return sqltypes.Null, errf("round of non-numeric")
		}
		scale := 0.0
		if len(args) == 2 {
			d, _ := args[1].AsFloat()
			scale = d
		}
		m := math.Pow(10, scale)
		return sqltypes.NewFloat(math.Round(f*m) / m), nil
	},
	"power": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 2 {
			return sqltypes.Null, errf("power expects 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		a, _ := args[0].AsFloat()
		b, _ := args[1].AsFloat()
		return sqltypes.NewFloat(math.Pow(a, b)), nil
	},
	"sign": numeric1(func(f float64) float64 {
		switch {
		case f > 0:
			return 1
		case f < 0:
			return -1
		}
		return 0
	}),
	"upper": string1(strings.ToUpper),
	"lower": string1(strings.ToLower),
	"ltrim": string1(func(s string) string { return strings.TrimLeft(s, " ") }),
	"rtrim": string1(func(s string) string { return strings.TrimRight(s, " ") }),
	"len": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, errf("len expects 1 argument")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewInt(int64(len(args[0].Display()))), nil
	},
	"substring": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 3 {
			return sqltypes.Null, errf("substring expects 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return sqltypes.Null, nil
		}
		s := args[0].Display()
		start, _ := args[1].AsInt()
		length, _ := args[2].AsInt()
		if start < 1 {
			start = 1
		}
		lo := int(start - 1)
		if lo > len(s) {
			return sqltypes.NewString(""), nil
		}
		hi := lo + int(length)
		if hi > len(s) || length < 0 {
			hi = len(s)
		}
		return sqltypes.NewString(s[lo:hi]), nil
	},
	"replace": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 3 {
			return sqltypes.Null, errf("replace expects 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ReplaceAll(args[0].Display(), args[1].Display(), args[2].Display())), nil
	},
	"tuple_get": func(args []sqltypes.Value) (sqltypes.Value, error) {
		// Extracts one attribute of a tuple-valued aggregate result (the
		// paper's "aggVal" extraction, §6). NULL tuples yield NULL.
		if len(args) != 2 {
			return sqltypes.Null, errf("tuple_get expects 2 arguments")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		if args[0].Kind() != sqltypes.KindTuple {
			return sqltypes.Null, errf("tuple_get of non-tuple %s", args[0].Kind())
		}
		i, ok := args[1].AsInt()
		t := args[0].Tuple()
		if !ok || i < 0 || int(i) >= len(t) {
			return sqltypes.Null, errf("tuple_get index %v out of range %d", args[1], len(t))
		}
		return t[i], nil
	},
	"coalesce": func(args []sqltypes.Value) (sqltypes.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqltypes.Null, nil
	},
	"isnull": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 2 {
			return sqltypes.Null, errf("isnull expects 2 arguments")
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	},
	"nullif": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 2 {
			return sqltypes.Null, errf("nullif expects 2 arguments")
		}
		if sqltypes.Equal(args[0], args[1]) {
			return sqltypes.Null, nil
		}
		return args[0], nil
	},
	"iif": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 3 {
			return sqltypes.Null, errf("iif expects 3 arguments")
		}
		if args[0].Truthy() {
			return args[1], nil
		}
		return args[2], nil
	},
	"year":  datePart(func(y, m, d int) int { return y }),
	"month": datePart(func(y, m, d int) int { return m }),
	"day":   datePart(func(y, m, d int) int { return d }),
	"cast_int": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, errf("cast_int expects 1 argument")
		}
		return args[0].CoerceTo(sqltypes.Int)
	},
	"cast_float": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, errf("cast_float expects 1 argument")
		}
		return args[0].CoerceTo(sqltypes.Float)
	},
	"str": func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, errf("str expects 1 argument")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(args[0].Display()), nil
	},
}

// IsBuiltinScalarFunc reports whether name is a planner built-in scalar
// function (used by the engine's catalog to reject conflicting UDF names).
func IsBuiltinScalarFunc(name string) bool {
	_, ok := builtinScalarFuncs[strings.ToLower(name)]
	return ok
}

func numeric1(f func(float64) float64) func([]sqltypes.Value) (sqltypes.Value, error) {
	return func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, errf("function expects 1 argument")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		v, ok := args[0].AsFloat()
		if !ok {
			return sqltypes.Null, errf("numeric function of non-numeric %s", args[0].Kind())
		}
		out := f(v)
		if args[0].Kind() == sqltypes.KindInt && out == math.Trunc(out) {
			return sqltypes.NewInt(int64(out)), nil
		}
		return sqltypes.NewFloat(out), nil
	}
}

func string1(f func(string) string) func([]sqltypes.Value) (sqltypes.Value, error) {
	return func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, errf("function expects 1 argument")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(f(args[0].Display())), nil
	}
}

func datePart(pick func(y, m, d int) int) func([]sqltypes.Value) (sqltypes.Value, error) {
	return func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, errf("date function expects 1 argument")
		}
		v := args[0]
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		if v.Kind() == sqltypes.KindString {
			parsed, err := sqltypes.ParseDate(v.Str())
			if err != nil {
				return sqltypes.Null, err
			}
			v = parsed
		}
		if v.Kind() != sqltypes.KindDate {
			return sqltypes.Null, errf("date function of non-date %s", v.Kind())
		}
		s := v.DateString() // yyyy-mm-dd
		y := int(s[0]-'0')*1000 + int(s[1]-'0')*100 + int(s[2]-'0')*10 + int(s[3]-'0')
		m := int(s[5]-'0')*10 + int(s[6]-'0')
		d := int(s[8]-'0')*10 + int(s[9]-'0')
		return sqltypes.NewInt(int64(pick(y, m, d))), nil
	}
}
