// Rule-based rewrite pass over the logical IR (logical.go). Compile runs it
// between decorrelation and physical compilation: the AST is cloned, built
// into the IR, normalized by a fixpoint loop of local rules, and lowered back
// to a canonical AST for the unchanged physical compiler. Every rule is
// individually toggleable through Options.DisableRules (for bisection), every
// firing is counted into Plan.Rewrites for the EXPLAIN `rewrites:` header,
// and nodes a rule touched carry a ` [rw:<rule>]` suffix in the plan tree.
//
// The rules are deliberately conservative: a transformation applies only
// when the rewritten query is byte-identical in results (row values AND row
// order, serial and parallel) to the original, including SQL NULL semantics
// and error behavior — constant folding never folds an expression whose
// evaluation errors (overflow, division by zero), and predicates only move
// when the moved copy is total (cannot raise a new runtime error).
package plan

import (
	"fmt"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// RuleSet is a bitmask of rewrite rules. It is a plain integer so Options
// stays comparable (the engine's plan cache uses Options as part of its map
// key).
type RuleSet uint32

const (
	// RuleFoldConst folds constant subexpressions with SQL three-valued
	// NULL semantics, mirroring the runtime evaluator exactly (expressions
	// whose evaluation would error are left alone), and removes WHERE/HAVING
	// conjuncts that fold to constant TRUE.
	RuleFoldConst RuleSet = 1 << iota
	// RulePushFilter pushes single-source predicates into plain derived
	// tables (through the projection, by substituting item expressions) and
	// below inner joins — including the `(Q) aggify_q` derived table the
	// Aggify rewrite emits, so pushed predicates reach the base scan, become
	// index seeks, and keep parallel eligibility.
	RulePushFilter
	// RulePushFilterDecor pushes predicates through the shapes decorrelation
	// emits: group-key predicates into grouped derived tables, and preserved-
	// side predicates below LEFT JOINs. Disabled automatically when
	// Options.DisableDecorrelation is set, so the decorrelation ablation
	// measures what it claims.
	RulePushFilterDecor
	// RulePruneProject drops unreferenced pass-through columns from derived
	// table projections so only referenced columns flow through joins and
	// exchanges.
	RulePruneProject
	// RuleDropSort removes constant and duplicate ORDER BY keys and an outer
	// ORDER BY that re-states a prefix of the order a derived table already
	// produces. It never touches a sort an order-enforced (Eq. 6) aggregate
	// observes, because those sorts live inside the derived table below the
	// aggregation, not above it.
	RuleDropSort
	// RuleReorderJoins greedily reorders all-inner explicit join chains by
	// estimated leaf cardinality (smallest first), using table statistics
	// and histogram selectivities. It preserves the result multiset but not
	// row order — joins guarantee no order — so it is the one rule exempt
	// from the order-identity contract above; queries that need an order
	// state it with ORDER BY.
	RuleReorderJoins
	// RuleChooseAccessPath costs the access paths available to each base
	// scan — full scan, hash/ordered index equality seek, ordered-index
	// range seek — from table statistics and equi-depth histograms, and
	// pins the cheapest on the plan. Decisions surface in EXPLAIN as
	// [rw:choose_access_path] with a cost= annotation.
	RuleChooseAccessPath

	ruleSentinel
)

// RuleAll selects every rewrite rule.
const RuleAll RuleSet = ruleSentinel - 1

// Has reports whether any rule in x is present in r.
func (r RuleSet) Has(x RuleSet) bool { return r&x != 0 }

// ruleOrder fixes the reporting order (the order rules run in a pass).
var ruleOrder = []RuleSet{RuleFoldConst, RulePushFilter, RulePushFilterDecor, RulePruneProject, RuleDropSort, RuleReorderJoins, RuleChooseAccessPath}

func ruleName(r RuleSet) string {
	switch r {
	case RuleFoldConst:
		return "fold_const"
	case RulePushFilter:
		return "push_filter"
	case RulePushFilterDecor:
		return "push_filter_decor"
	case RulePruneProject:
		return "prune_project"
	case RuleDropSort:
		return "drop_sort"
	case RuleReorderJoins:
		return "reorder_joins"
	case RuleChooseAccessPath:
		return "choose_access_path"
	}
	return fmt.Sprintf("rule(%#x)", uint32(r))
}

// maxRewritePasses caps the fixpoint loop; every rule strictly shrinks the
// tree or moves a predicate downward, so real queries converge in 2-3
// passes.
const maxRewritePasses = 10

// rewriteSelect runs the rewrite pass and returns the normalized query plus
// the fired-rule report. When nothing fires (or any step refuses the shape)
// the original query is returned untouched, so unchanged queries compile to
// byte-identical plans.
func (c *compiler) rewriteSelect(q *ast.Select) (*ast.Select, []string) {
	rules := RuleAll &^ c.opts.DisableRules
	if c.opts.DisableDecorrelation {
		rules &^= RulePushFilterDecor
	}
	if rules == 0 {
		return q, nil
	}
	root, ok := c.buildLogical(ast.CloneSelect(q))
	if !ok {
		return q, nil
	}
	rw := &rewriter{c: c, rules: rules, fired: map[RuleSet]int{}}
	root = rw.run(root)
	if rw.total == 0 {
		return q, nil
	}
	out, ok := c.lowerLogical(root)
	if !ok {
		return q, nil
	}
	return out, rw.firedList()
}

type rewriter struct {
	c     *compiler
	rules RuleSet
	fired map[RuleSet]int
	total int
}

func (rw *rewriter) fire(r RuleSet)         { rw.fired[r]++; rw.total++ }
func (rw *rewriter) fireN(r RuleSet, n int) { rw.fired[r] += n; rw.total += n }

func (rw *rewriter) firedList() []string {
	var out []string
	for _, r := range ruleOrder {
		if n := rw.fired[r]; n > 0 {
			out = append(out, fmt.Sprintf("%s(%d)", ruleName(r), n))
		}
	}
	return out
}

func (rw *rewriter) run(n lNode) lNode {
	for pass := 0; pass < maxRewritePasses; pass++ {
		before := rw.total
		if rw.rules.Has(RuleFoldConst) {
			n = rw.foldPass(n)
		}
		if rw.rules.Has(RulePushFilter | RulePushFilterDecor) {
			n = rw.pushPass(n)
		}
		if rw.rules.Has(RulePruneProject) {
			rw.pruneSelect(n)
		}
		if rw.rules.Has(RuleDropSort) {
			n = rw.sortPass(n)
		}
		if rw.total == before {
			break
		}
	}
	// Cost-based passes run once, after the local rules converge: the
	// fixpoint above fixes predicate placement (and mutates conjunct
	// pointers via folding), and these passes only decide among
	// already-equivalent physical shapes — they never enable another rule.
	if rw.rules.Has(RuleReorderJoins) {
		n = rw.reorderPass(n)
	}
	if rw.rules.Has(RuleChooseAccessPath) {
		n = rw.choosePass(n)
	}
	return n
}

// --- fold_const ---

func (rw *rewriter) foldPass(n lNode) lNode {
	n = mapLogicalChildren(n, rw.foldPass)
	switch t := n.(type) {
	case *lFilter:
		t.Pred = rw.fold(t.Pred)
		if lit, ok := t.Pred.(*ast.Literal); ok && lit.Val.Truthy() {
			rw.fire(RuleFoldConst)
			return t.In
		}
	case *lProject:
		for i := range t.Items {
			if !t.Items[i].Star {
				t.Items[i].Expr = rw.fold(t.Items[i].Expr)
			}
		}
	case *lAggregate:
		for i := range t.GroupBy {
			t.GroupBy[i] = rw.fold(t.GroupBy[i])
		}
	case *lJoin:
		if t.On != nil {
			t.On = rw.fold(t.On)
		}
	case *lSort:
		for i := range t.Keys {
			t.Keys[i].Expr = rw.fold(t.Keys[i].Expr)
		}
	case *lTop:
		t.N = rw.fold(t.N)
	}
	return n
}

func (rw *rewriter) fold(e ast.Expr) ast.Expr {
	out, n := foldExpr(e)
	if n > 0 {
		rw.fireN(RuleFoldConst, n)
	}
	return out
}

// foldExpr folds constant subexpressions bottom-up, returning the rewritten
// expression and the number of collapses. It mirrors the runtime evaluator
// exactly — sqltypes.Apply/Negate/Not with Kleene AND/OR and NULL
// propagation — and leaves any expression whose evaluation errors untouched,
// preserving runtime error behavior. Subquery bodies are opaque (their
// expressions belong to other blocks).
func foldExpr(e ast.Expr) (ast.Expr, int) {
	switch x := e.(type) {
	case *ast.BinExpr:
		var n int
		x.L, n = foldExpr(x.L)
		var nr int
		x.R, nr = foldExpr(x.R)
		n += nr
		if l, ok := x.L.(*ast.Literal); ok {
			if r, ok := x.R.(*ast.Literal); ok {
				if v, err := sqltypes.Apply(x.Op, l.Val, r.Val); err == nil {
					return ast.Lit(v), n + 1
				}
			}
		}
		return x, n
	case *ast.UnaryExpr:
		var n int
		x.E, n = foldExpr(x.E)
		if l, ok := x.E.(*ast.Literal); ok {
			if x.Op == '-' {
				if v, err := sqltypes.Negate(l.Val); err == nil {
					return ast.Lit(v), n + 1
				}
				return x, n
			}
			return ast.Lit(sqltypes.Not(l.Val)), n + 1
		}
		return x, n
	case *ast.IsNullExpr:
		var n int
		x.E, n = foldExpr(x.E)
		if l, ok := x.E.(*ast.Literal); ok {
			return ast.Lit(sqltypes.NewBool(l.Val.IsNull() != x.Negate)), n + 1
		}
		return x, n
	case *ast.BetweenExpr:
		var n, ni int
		x.E, ni = foldExpr(x.E)
		n += ni
		x.Lo, ni = foldExpr(x.Lo)
		n += ni
		x.Hi, ni = foldExpr(x.Hi)
		n += ni
		le, lok := x.E.(*ast.Literal)
		ll, llok := x.Lo.(*ast.Literal)
		lh, lhok := x.Hi.(*ast.Literal)
		if lok && llok && lhok {
			// Same pipeline the compiled form runs: Ge, Le, Kleene AND, NOT.
			// Comparisons and AND/NOT cannot error.
			ge, err1 := sqltypes.Apply(sqltypes.OpGe, le.Val, ll.Val)
			lev, err2 := sqltypes.Apply(sqltypes.OpLe, le.Val, lh.Val)
			if err1 == nil && err2 == nil {
				v, err := sqltypes.Apply(sqltypes.OpAnd, ge, lev)
				if err == nil {
					if x.Negate {
						v = sqltypes.Not(v)
					}
					return ast.Lit(v), n + 1
				}
			}
		}
		return x, n
	case *ast.CaseExpr:
		var n, ni int
		for i := range x.Whens {
			x.Whens[i].Cond, ni = foldExpr(x.Whens[i].Cond)
			n += ni
			x.Whens[i].Then, ni = foldExpr(x.Whens[i].Then)
			n += ni
		}
		if x.Else != nil {
			x.Else, ni = foldExpr(x.Else)
			n += ni
		}
		kept := x.Whens[:0]
		for _, w := range x.Whens {
			if lit, ok := w.Cond.(*ast.Literal); ok {
				if !lit.Val.Truthy() {
					n++ // arm can never be taken
					continue
				}
				// First truthy literal arm: everything after it is dead.
				if len(kept) == 0 {
					return w.Then, n + 1
				}
				x.Whens = kept
				x.Else = w.Then
				return x, n + 1
			}
			kept = append(kept, w)
		}
		if len(kept) == 0 {
			n++
			if x.Else != nil {
				return x.Else, n
			}
			return ast.Lit(sqltypes.Null), n
		}
		x.Whens = kept
		return x, n
	case *ast.FuncCall:
		var n, ni int
		for i := range x.Args {
			x.Args[i], ni = foldExpr(x.Args[i])
			n += ni
		}
		return x, n
	case *ast.InExpr:
		var n, ni int
		x.E, ni = foldExpr(x.E)
		n += ni
		for i := range x.List {
			x.List[i], ni = foldExpr(x.List[i])
			n += ni
		}
		return x, n
	}
	return e, 0
}

// --- push_filter / push_filter_decor ---

func (rw *rewriter) pushPass(n lNode) lNode {
	n = mapLogicalChildren(n, rw.pushPass)
	if f, ok := n.(*lFilter); ok {
		if pushed, ok := rw.tryPush(f); ok {
			return pushed
		}
	}
	return n
}

// unitRef is one named FROM unit with enough context to decide and apply a
// pushdown: its binding and output columns, a setter to splice a replacement
// into the tree, and its position relative to outer joins.
type unitRef struct {
	node      lNode
	set       func(lNode)
	binding   string
	cols      []string
	known     bool // cols resolved (false for CTEs, late-bound tables, stars)
	blocked   bool // null-supplying side of a LEFT JOIN: no pushdown
	joined    bool // under at least one explicit join
	underLeft bool // on the preserved side of a LEFT JOIN
}

func (rw *rewriter) collectUnits(n lNode, set func(lNode), blocked, joined, underLeft bool, out *[]unitRef) {
	switch t := n.(type) {
	case *lCross:
		for i := range t.Units {
			i := i
			rw.collectUnits(t.Units[i], func(x lNode) { t.Units[i] = x }, blocked, joined, underLeft, out)
		}
	case *lJoin:
		rw.collectUnits(t.L, func(x lNode) { t.L = x }, blocked, true, underLeft || t.Kind == ast.JoinLeft, out)
		rw.collectUnits(t.R, func(x lNode) { t.R = x }, blocked || t.Kind == ast.JoinLeft, true, underLeft, out)
	default:
		u := unitRef{node: n, set: set, blocked: blocked, joined: joined, underLeft: underLeft}
		u.binding, u.cols, u.known = rw.unitInfo(n)
		*out = append(*out, u)
	}
}

func (rw *rewriter) unitInfo(n lNode) (binding string, cols []string, known bool) {
	switch t := n.(type) {
	case *lScan:
		binding = t.Alias
		if binding == "" {
			binding = t.Name
		}
		if lateBound(t.Name) {
			return binding, nil, false
		}
		tab, err := rw.c.cat.ResolveTable(t.Name)
		if err != nil {
			return binding, nil, false
		}
		return binding, tab.Schema.Names(), true
	case *lCTERef:
		binding = t.Alias
		if binding == "" {
			binding = t.Name
		}
		return binding, nil, false
	case *lDerived:
		p := blockProject(t.Child)
		if p == nil {
			return t.Alias, nil, false
		}
		for i, it := range p.Items {
			if it.Star {
				return t.Alias, nil, false
			}
			cols = append(cols, itemOutName(it, i))
		}
		return t.Alias, cols, true
	}
	return "", nil, false
}

// tryPush attempts to move filter f's predicate into the single FROM unit it
// references. On success the filter node is consumed (a copy now lives
// inside the unit) and the filter's input is returned.
func (rw *rewriter) tryPush(f *lFilter) (lNode, bool) {
	switch f.In.(type) {
	case *lCross, *lJoin, *lDerived:
	default:
		return nil, false
	}
	pred := f.Pred
	if ast.HasSubquery(pred) {
		// A predicate with an embedded (possibly correlated) subquery stays
		// where the user wrote it: moving it would change how often the
		// subquery runs.
		return nil, false
	}
	refs := ast.ColRefs(pred)
	if len(refs) == 0 {
		return nil, false
	}
	var units []unitRef
	rw.collectUnits(f.In, func(x lNode) { f.In = x }, false, false, false, &units)

	target := -1
	for _, cr := range refs {
		idx := -1
		for i, u := range units {
			var match bool
			if cr.Table != "" {
				if cr.Table != u.binding {
					continue
				}
				if !u.known || !containsStr(u.cols, cr.Name) {
					return nil, false
				}
				match = true
			} else {
				if !u.known {
					// A unit with unknown columns could expose this name;
					// uniqueness is unprovable.
					return nil, false
				}
				match = containsStr(u.cols, cr.Name)
			}
			if match {
				if idx != -1 {
					return nil, false // ambiguous reference
				}
				idx = i
			}
		}
		if idx == -1 {
			return nil, false // outer reference or unknown column
		}
		if target == -1 {
			target = idx
		} else if target != idx {
			return nil, false // predicate spans units
		}
	}
	u := units[target]
	if u.blocked {
		return nil, false
	}

	switch un := u.node.(type) {
	case *lDerived:
		rule, ok := rw.pushIntoDerived(un, pred)
		if !ok {
			return nil, false
		}
		rw.fire(rule)
		return f.In, true
	case *lScan:
		// A scan under a join cannot receive the predicate directly (the
		// physical compiler assigns conjuncts per block), so wrap it in a
		// filtering derived table: (SELECT * FROM t WHERE pred) binding.
		// References resolve identically inside; each preserved-side row is
		// filtered exactly once either way, so results are byte-identical.
		if !u.joined || !u.known {
			return nil, false
		}
		rule := RulePushFilter
		if u.underLeft {
			rule = RulePushFilterDecor
		}
		if !rw.rules.Has(rule) || !totalPushExpr(pred) {
			return nil, false
		}
		mark := ruleName(rule)
		u.set(&lDerived{
			Alias: u.binding,
			mark:  mark,
			Child: &lProject{
				Items: []ast.SelectItem{{Star: true}},
				In:    &lFilter{In: un, Pred: pred, mark: mark},
			},
		})
		rw.fire(rule)
		return f.In, true
	}
	return nil, false
}

// pushIntoDerived moves pred inside derived table d, substituting the
// derived table's output columns with the projection expressions they name.
func (rw *rewriter) pushIntoDerived(d *lDerived, pred ast.Expr) (RuleSet, bool) {
	p := blockProject(d.Child)
	if p == nil || p.Distinct {
		return 0, false
	}
	// A filter below TOP changes which rows the limit keeps.
	for n := d.Child; ; {
		if w, ok := n.(*lWith); ok {
			n = w.In
			continue
		}
		if s, ok := n.(*lSort); ok {
			n = s.In
			continue
		}
		if a, ok := n.(*lApply); ok {
			n = a.In
			continue
		}
		if _, ok := n.(*lTop); ok {
			return 0, false
		}
		break
	}

	byName := map[string]int{}
	dup := map[string]bool{}
	for i, it := range p.Items {
		if it.Star {
			return 0, false
		}
		name := itemOutName(it, i)
		if _, seen := byName[name]; seen {
			dup[name] = true
		} else {
			byName[name] = i
		}
	}

	// Locate the block's aggregation, if any, below the HAVING filters.
	var aggNode *lAggregate
	n := p.In
	for {
		if f, ok := n.(*lFilter); ok {
			n = f.In
			continue
		}
		break
	}
	if a, ok := n.(*lAggregate); ok {
		aggNode = a
	}

	rule := RulePushFilter
	if aggNode != nil {
		// Grouped derived table (the shape decorrelation emits): only
		// predicates over group keys commute with the aggregation — all rows
		// of a group share the key, so filtering rows before grouping keeps
		// exactly the groups that would have survived the outer filter.
		rule = RulePushFilterDecor
		keys := map[string]bool{}
		for _, g := range aggNode.GroupBy {
			keys[g.String()] = true
		}
		for _, cr := range ast.ColRefs(pred) {
			idx, found := byName[cr.Name]
			if !found || dup[cr.Name] {
				return 0, false
			}
			if !keys[p.Items[idx].Expr.String()] {
				return 0, false
			}
		}
	}
	if !rw.rules.Has(rule) {
		return 0, false
	}

	okSubst := true
	subst := mapColRefs(ast.CloneExpr(pred), func(cr *ast.ColRef) ast.Expr {
		if cr.Table != "" && cr.Table != d.Alias {
			okSubst = false
			return cr
		}
		if dup[cr.Name] {
			okSubst = false
			return cr
		}
		idx, found := byName[cr.Name]
		if !found {
			okSubst = false
			return cr
		}
		return ast.CloneExpr(p.Items[idx].Expr)
	})
	if !okSubst || !totalPushExpr(subst) {
		return 0, false
	}

	mark := ruleName(rule)
	if aggNode != nil {
		aggNode.In = &lFilter{In: aggNode.In, Pred: subst, mark: mark}
	} else {
		p.In = &lFilter{In: p.In, Pred: subst, mark: mark}
	}
	d.mark = addMark(d.mark, mark)
	return rule, true
}

// totalPushExpr reports whether e is total: evaluating it can never raise a
// runtime error, regardless of input values. Comparisons, Kleene AND/OR/NOT,
// LIKE, CONCAT, IS NULL, BETWEEN, CASE, and IN over a list are total;
// arithmetic (overflow, division by zero), unary minus, function calls, and
// subqueries are not. Moving a total predicate can never introduce an error
// the original query would not have raised.
func totalPushExpr(e ast.Expr) bool {
	total := true
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch t := x.(type) {
		case *ast.Literal, *ast.ColRef, *ast.VarRef, *ast.ParamRef,
			*ast.IsNullExpr, *ast.BetweenExpr, *ast.CaseExpr:
		case *ast.BinExpr:
			switch t.Op {
			case sqltypes.OpAdd, sqltypes.OpSub, sqltypes.OpMul, sqltypes.OpDiv, sqltypes.OpMod:
				total = false
			}
		case *ast.UnaryExpr:
			if t.Op == '-' {
				total = false
			}
		case *ast.InExpr:
			if t.Query != nil {
				total = false
			}
		default:
			total = false
		}
		return total
	})
	return total
}

// --- prune_project ---

// pruneSelect prunes unreferenced pass-through columns from derived tables,
// walking one select root (wrappers + block or set-op branches). Sort/Top
// expressions above the block count as references into it.
func (rw *rewriter) pruneSelect(root lNode) {
	var outer []ast.Expr
	n := root
	if w, ok := n.(*lWith); ok {
		n = w.In // CTE bodies cannot reference this block's FROM units
	}
	if t, ok := n.(*lTop); ok {
		outer = append(outer, t.N)
		n = t.In
	}
	if s, ok := n.(*lSort); ok {
		for _, k := range s.Keys {
			outer = append(outer, k.Expr)
		}
		n = s.In
	}
	if set, ok := n.(*lSetOp); ok {
		for _, b := range set.Branches {
			rw.pruneBlock(b, outer)
		}
		return
	}
	rw.pruneBlock(n, outer)
}

func (rw *rewriter) pruneBlock(n lNode, outer []ast.Expr) {
	exprs := append([]ast.Expr(nil), outer...)
	if a, ok := n.(*lApply); ok {
		n = a.In
	}
	p, ok := n.(*lProject)
	if !ok {
		return
	}
	starAll := false
	starQual := map[string]bool{}
	for _, it := range p.Items {
		if it.Star {
			if it.Alias == "" {
				starAll = true
			} else {
				starQual[it.Alias] = true
			}
			continue
		}
		exprs = append(exprs, it.Expr)
	}
	n = p.In
	for {
		if f, ok := n.(*lFilter); ok {
			exprs = append(exprs, f.Pred)
			n = f.In
			continue
		}
		if a, ok := n.(*lAggregate); ok {
			exprs = append(exprs, a.GroupBy...)
			n = a.In
			continue
		}
		break
	}
	var deriveds []*lDerived
	var walk func(x lNode)
	walk = func(x lNode) {
		switch t := x.(type) {
		case *lCross:
			for _, u := range t.Units {
				walk(u)
			}
		case *lJoin:
			if t.On != nil {
				exprs = append(exprs, t.On)
			}
			walk(t.L)
			walk(t.R)
		case *lDerived:
			deriveds = append(deriveds, t)
		}
	}
	walk(n)
	for _, d := range deriveds {
		if !starAll && !starQual[d.Alias] {
			rw.pruneDerived(d, exprs)
		}
		rw.pruneSelect(d.Child) // prune nested levels too
	}
}

// pruneDerived drops projection items of d that no enclosing-block
// expression references. Only bare column references and literals are
// prunable: dropping a computed item could remove a runtime error the
// original query raises. Pruning bails out entirely if any item relies on
// positional (colN) naming, which item removal would renumber.
func (rw *rewriter) pruneDerived(d *lDerived, exprs []ast.Expr) {
	p := blockProject(d.Child)
	if p == nil || p.Distinct || len(p.Items) <= 1 {
		return
	}
	for _, it := range p.Items {
		if it.Star {
			return
		}
		if it.Alias == "" {
			if _, ok := it.Expr.(*ast.ColRef); !ok {
				return // positional colN name; pruning would renumber
			}
		}
	}

	refd := map[string]bool{}
	for _, e := range exprs {
		for _, cr := range ast.ColRefs(e) {
			if cr.Table == "" || cr.Table == d.Alias {
				refd[cr.Name] = true
			}
		}
	}
	// The block's own ORDER BY / TOP resolve against the projection too.
	nn := d.Child
	if w, ok := nn.(*lWith); ok {
		nn = w.In
	}
	if t, ok := nn.(*lTop); ok {
		for _, cr := range ast.ColRefs(t.N) {
			refd[cr.Name] = true
		}
		nn = t.In
	}
	if s, ok := nn.(*lSort); ok {
		for _, k := range s.Keys {
			for _, cr := range ast.ColRefs(k.Expr) {
				refd[cr.Name] = true
			}
		}
	}

	kept := make([]ast.SelectItem, 0, len(p.Items))
	removed := 0
	for i, it := range p.Items {
		prunable := false
		switch it.Expr.(type) {
		case *ast.ColRef, *ast.Literal:
			prunable = true
		}
		if prunable && !refd[itemOutName(it, i)] {
			removed++
			continue
		}
		kept = append(kept, it)
	}
	if removed == 0 {
		return
	}
	if len(kept) == 0 {
		kept = append(kept, p.Items[0])
		removed--
		if removed == 0 {
			return
		}
	}
	p.Items = kept
	d.mark = addMark(d.mark, ruleName(RulePruneProject))
	rw.fireN(RulePruneProject, removed)
}

// --- drop_sort ---

func (rw *rewriter) sortPass(n lNode) lNode {
	n = mapLogicalChildren(n, rw.sortPass)
	s, ok := n.(*lSort)
	if !ok {
		return n
	}
	kept := make([]ast.OrderItem, 0, len(s.Keys))
	seen := map[string]bool{}
	for _, k := range s.Keys {
		if _, isLit := k.Expr.(*ast.Literal); isLit {
			// A constant key never reorders under a stable sort; this
			// dialect has no positional ORDER BY, so literals carry no
			// ordinal meaning.
			rw.fire(RuleDropSort)
			continue
		}
		str := k.Expr.String()
		if seen[str] {
			// A repeated key can never break a tie its first occurrence
			// left, whatever its direction.
			rw.fire(RuleDropSort)
			continue
		}
		seen[str] = true
		kept = append(kept, k)
	}
	s.Keys = kept
	if len(kept) == 0 {
		return s.In
	}
	if d := rw.sortRedundantOver(s); d != nil {
		d.mark = addMark(d.mark, ruleName(RuleDropSort))
		rw.fire(RuleDropSort)
		return s.In
	}
	return s
}

// sortRedundantOver reports (by returning the derived table) whether s
// re-states a prefix of the order its input already has: a block projecting
// pass-through columns of a derived table whose own ORDER BY starts with the
// same keys in the same directions. Filters preserve order and the sort is
// stable, so dropping the outer sort is an identity.
func (rw *rewriter) sortRedundantOver(s *lSort) *lDerived {
	n := s.In
	if a, ok := n.(*lApply); ok {
		n = a.In
	}
	p, ok := n.(*lProject)
	if !ok || p.Distinct {
		return nil
	}
	n = p.In
	for {
		if f, ok := n.(*lFilter); ok {
			n = f.In
			continue
		}
		break
	}
	d, ok := n.(*lDerived)
	if !ok {
		return nil
	}
	inner := d.Child
	if w, ok := inner.(*lWith); ok {
		inner = w.In
	}
	if t, ok := inner.(*lTop); ok {
		inner = t.In // TOP of a sorted input is still sorted
	}
	is, ok := inner.(*lSort)
	if !ok || len(s.Keys) > len(is.Keys) {
		return nil
	}
	ip := is.In
	if a, ok := ip.(*lApply); ok {
		ip = a.In
	}
	dp, ok := ip.(*lProject)
	if !ok {
		return nil
	}

	outIdx, outDup := itemIndex(p.Items)
	inIdx, inDup := itemIndex(dp.Items)
	if outIdx == nil || inIdx == nil {
		return nil
	}
	for i, k := range s.Keys {
		cr, ok := k.Expr.(*ast.ColRef)
		if !ok || cr.Table != "" || outDup[cr.Name] {
			return nil
		}
		oi, found := outIdx[cr.Name]
		if !found {
			return nil
		}
		oe, ok := p.Items[oi].Expr.(*ast.ColRef)
		if !ok || (oe.Table != "" && oe.Table != d.Alias) {
			return nil
		}
		if inDup[oe.Name] {
			return nil
		}
		ii, found := inIdx[oe.Name]
		if !found {
			return nil
		}
		ik := is.Keys[i]
		if ik.Desc != k.Desc {
			return nil
		}
		// The inner key must order by the very expression the item
		// projects, either verbatim or via the item's output name.
		if ik.Expr.String() != dp.Items[ii].Expr.String() {
			icr, ok := ik.Expr.(*ast.ColRef)
			if !ok || icr.Table != "" || icr.Name != itemOutName(dp.Items[ii], ii) {
				return nil
			}
		}
	}
	return d
}

// itemIndex maps output names to item positions; nil when the list has a
// star (names unknown).
func itemIndex(items []ast.SelectItem) (map[string]int, map[string]bool) {
	idx := map[string]int{}
	dup := map[string]bool{}
	for i, it := range items {
		if it.Star {
			return nil, nil
		}
		name := itemOutName(it, i)
		if _, seen := idx[name]; seen {
			dup[name] = true
		} else {
			idx[name] = i
		}
	}
	return idx, dup
}

// --- shared helpers ---

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func addMark(existing, rule string) string {
	if existing == "" {
		return rule
	}
	if strings.Contains(existing, rule) {
		return existing
	}
	return existing + "," + rule
}

// markExpr records that a predicate was placed by a rewrite rule, so the
// physical compiler annotates the Filter (or IndexSeek) it compiles into.
// Keys are expression pointers: splitConjuncts and ast.And preserve conjunct
// identity from lowering through compilation.
func (c *compiler) markExpr(e ast.Expr, rule string) {
	if c.marks == nil {
		c.marks = map[ast.Expr]string{}
	}
	c.marks[e] = rule
}

// markSelect records that a derived table's body was rewritten, annotating
// its Derived() node.
func (c *compiler) markSelect(q *ast.Select, rule string) {
	if c.selMarks == nil {
		c.selMarks = map[*ast.Select]string{}
	}
	c.selMarks[q] = rule
}

// rwSuffix renders a node-label annotation for a fired rule, "" when none.
func (c *compiler) rwSuffix(mark string) string {
	if mark == "" {
		return ""
	}
	return " [rw:" + mark + "]"
}

func (c *compiler) filterLabel(pred ast.Expr) string {
	return "Filter" + c.rwSuffix(c.marks[pred])
}
