package plan

import (
	"testing"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// parseExpr parses a scalar expression through the real parser so tests
// exercise the exact shapes the rewriter sees.
func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	q := parser.MustParse("select " + src)[0].(*ast.QueryStmt).Query
	return q.Items[0].Expr
}

func foldString(t *testing.T, src string) (string, int) {
	t.Helper()
	out, n := foldExpr(parseExpr(t, src))
	return out.String(), n
}

func TestFoldExprConstants(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"1 + 2 * 3", "7"},
		{"-(1 + 2)", "-3"},
		{"1 < 2", "TRUE"},
		{"'a' = 'b'", "FALSE"},
		{"null is null", "TRUE"},
		{"null is not null", "FALSE"},
		{"2 between 1 and 3", "TRUE"},
		{"not (1 = 1)", "FALSE"},
		{"'foo' || 'bar'", "'foobar'"},
		// Kleene three-valued logic: the fold must agree with the runtime.
		{"null and (1 = 0)", "FALSE"},
		{"null or (1 = 1)", "TRUE"},
		{"null and (1 = 1)", "NULL"},
		{"null or (1 = 0)", "NULL"},
		// NULL propagation through comparisons and arithmetic.
		{"null + 1", "NULL"},
		{"null = null", "NULL"},
		// CASE arm elimination.
		{"case when 1 = 0 then 'a' when 1 = 1 then 'b' else 'c' end", "'b'"},
		{"case when 1 = 0 then 'a' end", "NULL"},
	}
	for _, c := range cases {
		got, n := foldString(t, c.src)
		if got != c.want {
			t.Errorf("fold(%s) = %s, want %s", c.src, got, c.want)
		}
		if n == 0 {
			t.Errorf("fold(%s) fired no collapses", c.src)
		}
	}
}

func TestFoldExprLeavesErrorsAndColumns(t *testing.T) {
	// Expressions whose evaluation errors must survive untouched so the
	// runtime raises the same error the unrewritten query would.
	for _, src := range []string{"1 / 0", "9223372036854775807 + 1"} {
		before := parseExpr(t, src).String()
		got, _ := foldString(t, src)
		if got != before {
			t.Errorf("fold(%s) = %s, must stay unfolded", src, got)
		}
	}
	// Column references block folding of their enclosing expression but not
	// of constant siblings.
	got, n := foldString(t, "x + (1 + 2)")
	if got != "(x + 3)" || n != 1 {
		t.Errorf("fold(x + (1 + 2)) = %s (n=%d), want (x + 3) (n=1)", got, n)
	}
	// Subquery bodies are opaque.
	got, n = foldString(t, "(select 1 + 2) ")
	if n != 0 {
		t.Errorf("fold descended into a subquery: %s (n=%d)", got, n)
	}
}

func TestFoldExprCaseFirstTruthyArm(t *testing.T) {
	// A truthy literal arm after non-literal arms becomes the ELSE and the
	// trailing arms die.
	got, _ := foldString(t, "case when x = 1 then 'a' when 1 = 1 then 'b' when y = 2 then 'c' else 'd' end")
	want := "CASE WHEN (x = 1) THEN 'a' ELSE 'b' END"
	if got != want {
		t.Errorf("fold = %s, want %s", got, want)
	}
}

func TestTotalPushExpr(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"k = 7", true},
		{"k > 1 and v < 2", true},
		{"k is null", true},
		{"k between 1 and 3", true},
		{"k in (1, 2, 3)", true},
		{"case when k = 1 then 1 else 0 end = 1", true},
		// Arithmetic can overflow or divide by zero at new rows.
		{"k + 1 = 7", false},
		{"k / v = 1", false},
		{"-k = 7", false},
		// Function calls and subqueries may error or see different scopes.
		{"abs(k) = 7", false},
		{"k in (select 1)", false},
	}
	for _, c := range cases {
		if got := totalPushExpr(parseExpr(t, c.src)); got != c.want {
			t.Errorf("totalPushExpr(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestRuleSetNamesAndToggles(t *testing.T) {
	// Every rule has a distinct bit and a distinct name, in rule order.
	seen := map[string]bool{}
	var acc RuleSet
	for _, r := range ruleOrder {
		name := ruleName(r)
		if name == "" || seen[name] {
			t.Fatalf("rule %#x has bad/duplicate name %q", r, name)
		}
		seen[name] = true
		if acc.Has(r) {
			t.Fatalf("rule %#x overlaps earlier bits", r)
		}
		acc |= r
	}
	if acc != RuleAll {
		t.Fatalf("ruleOrder covers %#x, RuleAll = %#x", acc, RuleAll)
	}
	if !RuleAll.Has(RulePushFilter) || RuleSet(0).Has(RuleFoldConst) {
		t.Fatal("Has is broken")
	}
}

func TestAndReversedPreservesOrder(t *testing.T) {
	a := ast.Eq(ast.Col("a"), ast.IntLit(1))
	b := ast.Eq(ast.Col("b"), ast.IntLit(2))
	c := ast.Bin(sqltypes.OpGt, ast.Col("c"), ast.IntLit(3))
	// lowerFilters collects conjuncts top-down (outermost first); andReversed
	// must rebuild the original left-deep AND chain.
	orig := ast.And(a, b, c)
	got := andReversed([]ast.Expr{c, b, a})
	if got.String() != orig.String() {
		t.Fatalf("andReversed = %s, want %s", got.String(), orig.String())
	}
	if andReversed(nil) != nil {
		t.Fatal("empty chain must lower to nil")
	}
	if andReversed([]ast.Expr{a}) != ast.Expr(a) {
		t.Fatal("single conjunct must keep pointer identity")
	}
}

// stubCatalog satisfies Catalog for tests that never touch real tables;
// it knows only the built-in aggregate names (so buildLogical can classify
// aggregated blocks) and resolves no tables.
type stubCatalog struct{}

func (stubCatalog) ResolveTable(name string) (*storage.Table, error) {
	return nil, errf("stub catalog has no table %q", name)
}

func (stubCatalog) AggSpec(name string) (*exec.AggSpec, bool) {
	switch name {
	case "count", "sum", "min", "max", "avg":
		return &exec.AggSpec{}, true
	}
	return nil, false
}

func (stubCatalog) ScalarFuncExists(string) bool { return false }

// TestRewriteRoundTrip feeds representative queries through
// buildLogical/lowerLogical with no rules enabled and requires the lowered
// AST to render byte-identically to the original — the IR must be lossless.
func TestRewriteRoundTrip(t *testing.T) {
	queries := []string{
		"select a, b from t",
		"select distinct a from t where a = 1 and b > 2",
		"select a, count(*) as n from t where b = 1 group by a having count(*) > 2",
		"select top 3 a from t order by a desc, b",
		"select q.a from (select a from t where a > 0) q where q.a < 10",
		"select a from t inner join u on t.x = u.x left join v on v.y = t.y",
		"with c as (select a from t) select * from c where a = 1",
		"select a from t union all select b from u order by a",
	}
	for _, src := range queries {
		q := parser.MustParse(src)[0].(*ast.QueryStmt).Query
		before := q.String()
		c := &compiler{cat: stubCatalog{}}
		n, ok := c.buildLogical(q)
		if !ok {
			t.Errorf("buildLogical refused: %s", src)
			continue
		}
		out, ok := c.lowerLogical(n)
		if !ok {
			t.Errorf("lowerLogical refused: %s", src)
			continue
		}
		if got := out.String(); got != before {
			t.Errorf("round trip changed query:\n  in:  %s\n  out: %s", before, got)
		}
	}
}

func TestAddMark(t *testing.T) {
	m := addMark("", "push_filter")
	m = addMark(m, "prune_project")
	if m != "push_filter,prune_project" {
		t.Fatalf("addMark chain = %q", m)
	}
	if got := addMark(m, "push_filter"); got != m {
		t.Fatalf("addMark duplicated: %q", got)
	}
}
