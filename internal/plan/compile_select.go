package plan

import (
	"fmt"
	"sort"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Compile compiles a SELECT query into a reusable Plan: decorrelation, then
// the logical rewrite pass (logical.go + rewrite.go), then physical
// compilation of the normalized AST.
func Compile(cat Catalog, opts Options, q *ast.Select) (*Plan, error) {
	sc := &stampingCatalog{inner: cat, seen: map[*storage.Table]uint64{}}
	c := &compiler{cat: sc, opts: opts}
	if !opts.DisableDecorrelation {
		q = DecorrelateSelect(c, q)
	}
	rq, rewrites := c.rewriteSelect(q)
	builder, cols, n, err := c.compileSelect(rq, nil, nil)
	if err != nil && len(rewrites) > 0 {
		// A rewritten query must never fail where the original compiles;
		// fall back so a rule bug degrades to a missed optimization.
		c2 := &compiler{cat: sc, opts: opts}
		builder, cols, n, err = c2.compileSelect(q, nil, nil)
		rewrites = nil
	}
	if err != nil {
		return nil, err
	}
	p := &Plan{Columns: cols, Explain: n, build: builder, Rewrites: rewrites, Stamps: sc.stamps()}
	p.Parallel, p.Batched = planShape(n)
	return p, nil
}

// planShape derives the Parallel/Batched plan summary flags from the
// explain tree's operator labels (the same ones EXPLAIN prints, so the
// flags can never disagree with what the user sees).
func planShape(n *Node) (parallel, batched bool) {
	if n == nil {
		return false, false
	}
	if strings.HasPrefix(n.Op, "ParallelAgg(") {
		parallel = true
	}
	if strings.HasSuffix(n.Op, " [batch]") {
		batched = true
	}
	for _, c := range n.Children {
		p, b := planShape(c)
		parallel = parallel || p
		batched = batched || b
	}
	return parallel, batched
}

// compileSelect compiles a query (with CTEs and UNION ALL) against an
// enclosing scope. It returns the operator builder, output column names,
// and the explain node.
func (c *compiler) compileSelect(q *ast.Select, parent *scope, env *cteEnv) (opBuilder, []string, *Node, error) {
	var err error
	if env, err = c.registerCTEs(q, parent, env); err != nil {
		return nil, nil, nil, err
	}
	if q.Union == nil {
		builder, outSc, n, err := c.compileCore(q, parent, env, q.OrderBy, q.Top)
		if err != nil {
			return nil, nil, nil, err
		}
		return builder, outSc.names(), n, nil
	}
	// UNION ALL: compile each branch core, concatenate, then order/top.
	var builders []opBuilder
	var nodes []*Node
	var outSc *scope
	for branch := q; branch != nil; branch = branch.Union {
		b, sc, n, err := c.compileCore(branch, parent, env, nil, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		if outSc == nil {
			outSc = sc
		} else if sc.width() != outSc.width() {
			return nil, nil, nil, errf("UNION ALL branches have different column counts (%d vs %d)", outSc.width(), sc.width())
		}
		builders = append(builders, b)
		nodes = append(nodes, n)
	}
	n := node("UnionAll", nodes...)
	builder := annotate(func(bc *buildCtx) exec.Operator {
		children := make([]exec.Operator, len(builders))
		for i, b := range builders {
			children[i] = b(bc)
		}
		return &exec.ConcatOp{Children: children}
	}, n)
	builder, n, err = c.applyOrderTop(builder, n, outSc, q.OrderBy, q.Top, env)
	if err != nil {
		return nil, nil, nil, err
	}
	return builder, outSc.names(), n, nil
}

// registerCTEs binds the query's WITH clause into a new environment.
func (c *compiler) registerCTEs(q *ast.Select, parent *scope, env *cteEnv) (*cteEnv, error) {
	for i := range q.With {
		cte := q.With[i]
		b, err := c.compileCTE(cte, parent, env)
		if err != nil {
			return nil, err
		}
		env = &cteEnv{parent: env, binding: b}
	}
	return env, nil
}

func cteSelfRef(q *ast.Select, name string) bool {
	found := false
	var checkFrom func(te ast.TableExpr)
	checkFrom = func(te ast.TableExpr) {
		switch t := te.(type) {
		case *ast.TableRef:
			if t.Name == name {
				found = true
			}
		case *ast.SubqueryRef:
			for _, f := range t.Query.From {
				checkFrom(f)
			}
		case *ast.Join:
			checkFrom(t.L)
			checkFrom(t.R)
		}
	}
	for branch := q; branch != nil; branch = branch.Union {
		for _, te := range branch.From {
			checkFrom(te)
		}
	}
	return found
}

func (c *compiler) compileCTE(cte ast.CTE, parent *scope, env *cteEnv) (*cteBinding, error) {
	rename := func(cols []string) ([]colBinding, error) {
		out := make([]colBinding, len(cols))
		for i, n := range cols {
			out[i] = colBinding{Name: n}
		}
		if len(cte.Cols) > 0 {
			if len(cte.Cols) != len(cols) {
				return nil, errf("CTE %s declares %d columns but its query produces %d", cte.Name, len(cte.Cols), len(cols))
			}
			for i, n := range cte.Cols {
				out[i] = colBinding{Name: strings.ToLower(n)}
			}
		}
		return out, nil
	}
	if !cteSelfRef(cte.Query, cte.Name) {
		builder, cols, n, err := c.compileSelect(cte.Query, parent, env)
		if err != nil {
			return nil, err
		}
		bcols, err := rename(cols)
		if err != nil {
			return nil, err
		}
		return &cteBinding{
			name: cte.Name,
			cols: bcols,
			instantiate: func() (opBuilder, *Node, error) {
				cn := node("CTE("+cte.Name+")", n)
				return annotate(builder, cn), cn, nil
			},
		}, nil
	}
	// Recursive CTE: split UNION ALL branches into seed and recursive sets.
	var seeds, recs []*ast.Select
	for branch := cte.Query; branch != nil; branch = branch.Union {
		one := *branch
		one.Union = nil
		one.OrderBy = nil
		one.Top = nil
		one.With = nil
		if cteSelfRef(&one, cte.Name) {
			recs = append(recs, &one)
		} else {
			seeds = append(seeds, &one)
		}
	}
	if len(seeds) == 0 {
		return nil, errf("recursive CTE %s has no non-recursive seed branch", cte.Name)
	}
	var seedBuilders []opBuilder
	var seedCols []string
	var seedNodes []*Node
	for _, s := range seeds {
		b, cols, n, err := c.compileSelect(s, parent, env)
		if err != nil {
			return nil, err
		}
		if seedCols == nil {
			seedCols = cols
		}
		seedBuilders = append(seedBuilders, b)
		seedNodes = append(seedNodes, n)
	}
	bcols, err := rename(seedCols)
	if err != nil {
		return nil, err
	}
	key := new(int) // unique identity for per-execution delta buffers
	binding := &cteBinding{name: cte.Name, cols: bcols}
	// While compiling the recursive branches, self-references resolve to the
	// delta scan; references elsewhere instantiate the full recursive CTE.
	recBinding := &cteBinding{name: cte.Name, cols: bcols, deltaKey: key}
	recEnv := &cteEnv{parent: env, binding: recBinding}
	var recBuilders []opBuilder
	var recNodes []*Node
	for _, r := range recs {
		b, _, n, err := c.compileSelect(r, parent, recEnv)
		if err != nil {
			return nil, err
		}
		recBuilders = append(recBuilders, b)
		recNodes = append(recNodes, n)
	}
	maxRec := c.opts.MaxRecursion
	binding.instantiate = func() (opBuilder, *Node, error) {
		builder := func(bc *buildCtx) exec.Operator {
			seedChildren := make([]exec.Operator, len(seedBuilders))
			for i, b := range seedBuilders {
				seedChildren[i] = b(bc)
			}
			recChildren := make([]exec.Operator, len(recBuilders))
			for i, b := range recBuilders {
				recChildren[i] = b(bc)
			}
			return &exec.RecursiveCTEOp{
				Seed:          &exec.ConcatOp{Children: seedChildren},
				Recursive:     &exec.ConcatOp{Children: recChildren},
				Delta:         bc.delta(key),
				MaxIterations: maxRec,
			}
		}
		n := node("RecursiveCTE("+cte.Name+")", append(append([]*Node{}, seedNodes...), recNodes...)...)
		return annotate(builder, n), n, nil
	}
	return binding, nil
}

// aggCall describes one distinct aggregate invocation in a query block.
type aggCall struct {
	key  string // canonical String() of the call
	call *ast.FuncCall
	spec *exec.AggSpec
}

// findAggCalls collects aggregate invocations in e without descending into
// subqueries (whose aggregates belong to their own block).
func (c *compiler) findAggCalls(e ast.Expr, into *[]aggCall, seen map[string]bool) error {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Subquery:
		return nil
	case *ast.FuncCall:
		name := strings.ToLower(x.Name)
		spec, ok := c.cat.AggSpec(name)
		if ok {
			key := x.String()
			if !seen[key] {
				seen[key] = true
				*into = append(*into, aggCall{key: key, call: x, spec: spec})
			}
			// Aggregate arguments must not contain nested aggregates.
			var nested []aggCall
			nestedSeen := map[string]bool{}
			for _, a := range x.Args {
				if err := c.findAggCalls(a, &nested, nestedSeen); err != nil {
					return err
				}
			}
			if len(nested) > 0 {
				return errf("nested aggregate in arguments of %s", name)
			}
			return nil
		}
		for _, a := range x.Args {
			if err := c.findAggCalls(a, into, seen); err != nil {
				return err
			}
		}
		return nil
	case *ast.BinExpr:
		if err := c.findAggCalls(x.L, into, seen); err != nil {
			return err
		}
		return c.findAggCalls(x.R, into, seen)
	case *ast.UnaryExpr:
		return c.findAggCalls(x.E, into, seen)
	case *ast.IsNullExpr:
		return c.findAggCalls(x.E, into, seen)
	case *ast.CaseExpr:
		for _, w := range x.Whens {
			if err := c.findAggCalls(w.Cond, into, seen); err != nil {
				return err
			}
			if err := c.findAggCalls(w.Then, into, seen); err != nil {
				return err
			}
		}
		return c.findAggCalls(x.Else, into, seen)
	case *ast.InExpr:
		if err := c.findAggCalls(x.E, into, seen); err != nil {
			return err
		}
		for _, it := range x.List {
			if err := c.findAggCalls(it, into, seen); err != nil {
				return err
			}
		}
		return nil
	case *ast.BetweenExpr:
		if err := c.findAggCalls(x.E, into, seen); err != nil {
			return err
		}
		if err := c.findAggCalls(x.Lo, into, seen); err != nil {
			return err
		}
		return c.findAggCalls(x.Hi, into, seen)
	}
	return nil
}

// substPostAgg rewrites e so that group-by expressions and aggregate calls
// become references to the synthetic post-aggregation columns ("#agg".#N).
func substPostAgg(e ast.Expr, keyIndex map[string]int, aggIndex map[string]int, nKeys int) ast.Expr {
	if e == nil {
		return nil
	}
	if i, ok := keyIndex[e.String()]; ok {
		return ast.QCol("#agg", fmt.Sprintf("#%d", i))
	}
	if fc, ok := e.(*ast.FuncCall); ok {
		if j, ok := aggIndex[fc.String()]; ok {
			return ast.QCol("#agg", fmt.Sprintf("#%d", nKeys+j))
		}
	}
	switch x := e.(type) {
	case *ast.BinExpr:
		return &ast.BinExpr{Op: x.Op, L: substPostAgg(x.L, keyIndex, aggIndex, nKeys), R: substPostAgg(x.R, keyIndex, aggIndex, nKeys)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, E: substPostAgg(x.E, keyIndex, aggIndex, nKeys)}
	case *ast.IsNullExpr:
		return &ast.IsNullExpr{E: substPostAgg(x.E, keyIndex, aggIndex, nKeys), Negate: x.Negate}
	case *ast.CaseExpr:
		out := &ast.CaseExpr{Else: substPostAgg(x.Else, keyIndex, aggIndex, nKeys)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{
				Cond: substPostAgg(w.Cond, keyIndex, aggIndex, nKeys),
				Then: substPostAgg(w.Then, keyIndex, aggIndex, nKeys),
			})
		}
		return out
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, substPostAgg(a, keyIndex, aggIndex, nKeys))
		}
		return out
	case *ast.BetweenExpr:
		return &ast.BetweenExpr{
			E:      substPostAgg(x.E, keyIndex, aggIndex, nKeys),
			Lo:     substPostAgg(x.Lo, keyIndex, aggIndex, nKeys),
			Hi:     substPostAgg(x.Hi, keyIndex, aggIndex, nKeys),
			Negate: x.Negate,
		}
	case *ast.InExpr:
		out := &ast.InExpr{E: substPostAgg(x.E, keyIndex, aggIndex, nKeys), Negate: x.Negate, Query: x.Query}
		for _, it := range x.List {
			out.List = append(out.List, substPostAgg(it, keyIndex, aggIndex, nKeys))
		}
		return out
	default:
		return e
	}
}

// compileCore compiles one SELECT block (no UNION handling) including its
// projection, aggregation, DISTINCT, and — when orderBy/top are passed —
// ordering and limiting.
func (c *compiler) compileCore(q *ast.Select, parent *scope, env *cteEnv, orderBy []ast.OrderItem, top ast.Expr) (opBuilder, *scope, *Node, error) {
	builder, inScope, n, err := c.compileFrom(q.From, q.Where, parent, env)
	if err != nil {
		return nil, nil, nil, err
	}

	// Collect aggregate calls from projection, HAVING, and ORDER BY.
	var aggs []aggCall
	seen := map[string]bool{}
	for _, it := range q.Items {
		if it.Star {
			continue
		}
		if err := c.findAggCalls(it.Expr, &aggs, seen); err != nil {
			return nil, nil, nil, err
		}
	}
	if err := c.findAggCalls(q.Having, &aggs, seen); err != nil {
		return nil, nil, nil, err
	}
	for _, o := range orderBy {
		if err := c.findAggCalls(o.Expr, &aggs, seen); err != nil {
			return nil, nil, nil, err
		}
	}

	items := q.Items
	having := q.Having
	curScope := inScope
	if len(aggs) > 0 || len(q.GroupBy) > 0 {
		builder, curScope, n, err = c.compileAggregation(q, builder, inScope, n, env, aggs)
		if err != nil {
			return nil, nil, nil, err
		}
		// Rewrite items / having / order-by to reference post-agg columns.
		keyIndex := map[string]int{}
		for i, g := range q.GroupBy {
			keyIndex[g.String()] = i
		}
		aggIndex := map[string]int{}
		for j, a := range aggs {
			aggIndex[a.key] = j
		}
		items = make([]ast.SelectItem, len(q.Items))
		for i, it := range q.Items {
			if it.Star {
				return nil, nil, nil, errf("SELECT * is not allowed with aggregation")
			}
			// Substitution replaces group-key column refs with internal
			// #agg.#N refs; name the output after the original expression so
			// unaliased group keys keep their column name (outer blocks
			// reference derived tables by it).
			alias := it.Alias
			if cr, ok := it.Expr.(*ast.ColRef); ok && alias == "" {
				alias = cr.Name
			}
			items[i] = ast.SelectItem{Expr: substPostAgg(it.Expr, keyIndex, aggIndex, len(q.GroupBy)), Alias: alias}
		}
		having = substPostAgg(q.Having, keyIndex, aggIndex, len(q.GroupBy))
		if len(orderBy) > 0 {
			rewritten := make([]ast.OrderItem, len(orderBy))
			for i, o := range orderBy {
				rewritten[i] = ast.OrderItem{Expr: substPostAgg(o.Expr, keyIndex, aggIndex, len(q.GroupBy)), Desc: o.Desc}
			}
			orderBy = rewritten
		}
		if having != nil {
			pred, err := c.compileExpr(having, curScope, env)
			if err != nil {
				return nil, nil, nil, err
			}
			inner := builder
			n = node("Filter(HAVING)", n)
			builder = annotate(func(bc *buildCtx) exec.Operator {
				return &exec.FilterOp{Child: inner(bc), Pred: pred}
			}, n)
		}
	} else if q.Having != nil {
		return nil, nil, nil, errf("HAVING requires aggregation")
	}

	// Common-subquery elimination: when the projection evaluates textually
	// identical scalar subqueries several times per row (a pattern the
	// Froid inliner produces for Aggify's guarded rewrites), hoist each
	// distinct subquery into a shared pre-projection so it runs once per
	// row.
	if len(aggs) == 0 && len(q.GroupBy) == 0 {
		var err error
		builder, curScope, items, n, err = c.hoistCommonSubqueries(builder, curScope, items, env, n)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	// Projection with star expansion.
	type projItem struct {
		scalar exec.Scalar
		name   string
		expr   ast.Expr // nil for star-expanded columns
	}
	var proj []projItem
	for _, it := range items {
		if it.Star {
			for ord, col := range curScope.cols {
				if it.Alias != "" && col.Qual != it.Alias {
					continue
				}
				proj = append(proj, projItem{scalar: exec.ColScalar(ord), name: col.Name})
			}
			continue
		}
		s, err := c.compileExpr(it.Expr, curScope, env)
		if err != nil {
			return nil, nil, nil, err
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ast.ColRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", len(proj)+1)
			}
		}
		proj = append(proj, projItem{scalar: s, name: name, expr: it.Expr})
	}
	if len(proj) == 0 {
		return nil, nil, nil, errf("empty projection")
	}

	// ORDER BY: resolve against the projected output (aliases and projected
	// expressions); otherwise compile against the pre-projection scope and
	// carry hidden sort keys through the projection.
	outScope := &scope{parent: parent}
	for _, p := range proj {
		outScope.add("", p.name, sqltypes.Unknown)
	}
	type sortKey struct {
		ordinal int
		desc    bool
	}
	var sortKeys []sortKey
	hiddenStart := len(proj)
	for _, o := range orderBy {
		ord := -1
		// By alias/name.
		if cr, ok := o.Expr.(*ast.ColRef); ok && cr.Table == "" {
			for i, p := range proj[:hiddenStart] {
				if p.name == cr.Name {
					ord = i
					break
				}
			}
		}
		// By identical expression text.
		if ord < 0 {
			for i, p := range proj[:hiddenStart] {
				if p.expr != nil && p.expr.String() == o.Expr.String() {
					ord = i
					break
				}
			}
		}
		if ord < 0 {
			s, err := c.compileExpr(o.Expr, curScope, env)
			if err != nil {
				return nil, nil, nil, err
			}
			ord = len(proj)
			proj = append(proj, projItem{scalar: s, name: fmt.Sprintf("#sort%d", ord)})
		}
		sortKeys = append(sortKeys, sortKey{ordinal: ord, desc: o.Desc})
	}

	scalars := make([]exec.Scalar, len(proj))
	for i, p := range proj {
		scalars[i] = p.scalar
	}
	inner := builder
	n = node("Project", n)
	builder = annotate(func(bc *buildCtx) exec.Operator {
		return &exec.ProjectOp{Child: inner(bc), Exprs: scalars}
	}, n)

	if q.Distinct {
		if len(proj) > hiddenStart {
			return nil, nil, nil, errf("DISTINCT with ORDER BY on non-projected expressions is not supported")
		}
		d := builder
		n = node("Distinct", n)
		builder = annotate(func(bc *buildCtx) exec.Operator { return &exec.DistinctOp{Child: d(bc)} }, n)
	}

	if len(sortKeys) > 0 {
		keys := make([]exec.Scalar, len(sortKeys))
		desc := make([]bool, len(sortKeys))
		for i, k := range sortKeys {
			keys[i] = exec.ColScalar(k.ordinal)
			desc[i] = k.desc
		}
		s := builder
		n = node("Sort", n)
		builder = annotate(func(bc *buildCtx) exec.Operator {
			return &exec.SortOp{Child: s(bc), Keys: keys, Desc: desc}
		}, n)
	}
	if len(proj) > hiddenStart {
		// Strip hidden sort keys.
		strip := make([]exec.Scalar, hiddenStart)
		for i := range strip {
			strip[i] = exec.ColScalar(i)
		}
		s := builder
		builder = func(bc *buildCtx) exec.Operator {
			return &exec.ProjectOp{Child: s(bc), Exprs: strip}
		}
	}
	if top != nil {
		nScalar, err := c.compileExpr(top, &scope{parent: parent}, env)
		if err != nil {
			return nil, nil, nil, err
		}
		tb := builder
		n = node("Top", n)
		builder = annotate(func(bc *buildCtx) exec.Operator {
			return &exec.TopOp{Child: tb(bc), N: nScalar}
		}, n)
	}
	return builder, outScope, n, nil
}

// hoistCommonSubqueries rewrites the projection so scalar subqueries that
// occur more than once (textually) are computed once per row in an
// intermediate projection and referenced by column thereafter.
func (c *compiler) hoistCommonSubqueries(builder opBuilder, curScope *scope, items []ast.SelectItem, env *cteEnv, n *Node) (opBuilder, *scope, []ast.SelectItem, *Node, error) {
	// Count top-level scalar subqueries (not descending into subquery
	// bodies: nested subqueries belong to their parents' scopes).
	counts := map[string]int{}
	var countIn func(e ast.Expr)
	countIn = func(e ast.Expr) {
		if e == nil {
			return
		}
		if sq, ok := e.(*ast.Subquery); ok {
			if !sq.Exists {
				counts[sq.String()]++
			}
			return
		}
		switch x := e.(type) {
		case *ast.BinExpr:
			countIn(x.L)
			countIn(x.R)
		case *ast.UnaryExpr:
			countIn(x.E)
		case *ast.IsNullExpr:
			countIn(x.E)
		case *ast.CaseExpr:
			for _, w := range x.Whens {
				countIn(w.Cond)
				countIn(w.Then)
			}
			countIn(x.Else)
		case *ast.FuncCall:
			for _, a := range x.Args {
				countIn(a)
			}
		case *ast.BetweenExpr:
			countIn(x.E)
			countIn(x.Lo)
			countIn(x.Hi)
		case *ast.InExpr:
			countIn(x.E)
			for _, it := range x.List {
				countIn(it)
			}
		}
	}
	var firstOf = map[string]*ast.Subquery{}
	var findFirst func(e ast.Expr)
	findFirst = func(e ast.Expr) {
		if e == nil {
			return
		}
		if sq, ok := e.(*ast.Subquery); ok {
			if !sq.Exists && firstOf[sq.String()] == nil {
				firstOf[sq.String()] = sq
			}
			return
		}
		ast.WalkExpr(e, func(x ast.Expr) bool {
			if sq, ok := x.(*ast.Subquery); ok {
				if !sq.Exists && firstOf[sq.String()] == nil {
					firstOf[sq.String()] = sq
				}
				return false
			}
			return true
		})
	}
	for _, it := range items {
		if !it.Star {
			countIn(it.Expr)
		}
	}
	var dups []string
	for key, cnt := range counts {
		if cnt > 1 {
			dups = append(dups, key)
		}
	}
	if len(dups) == 0 {
		return builder, curScope, items, n, nil
	}
	sort.Strings(dups)
	for _, it := range items {
		if !it.Star {
			findFirst(it.Expr)
		}
	}
	// Pre-projection: identity columns plus one column per hoisted
	// subquery.
	exprs := make([]exec.Scalar, 0, curScope.width()+len(dups))
	for i := 0; i < curScope.width(); i++ {
		exprs = append(exprs, exec.ColScalar(i))
	}
	newScope := &scope{parent: curScope.parent, cols: append([]colBinding(nil), curScope.cols...)}
	newItems := append([]ast.SelectItem(nil), items...)
	for i, key := range dups {
		s, err := c.compileExpr(firstOf[key], curScope, env)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		exprs = append(exprs, s)
		colName := fmt.Sprintf("#sq%d", i)
		newScope.add("#sq", colName, sqltypes.Unknown)
		repl := ast.QCol("#sq", colName)
		for j := range newItems {
			if !newItems[j].Star {
				newItems[j].Expr = substituteByString(newItems[j].Expr, key, repl)
			}
		}
	}
	inner := builder
	cn := node(fmt.Sprintf("CommonSubquery(x%d)", len(dups)), n)
	builder = annotate(func(bc *buildCtx) exec.Operator {
		return &exec.ProjectOp{Child: inner(bc), Exprs: exprs}
	}, cn)
	return builder, newScope, newItems, cn, nil
}

// applyOrderTop applies ORDER BY and TOP over an already-projected stream
// (the UNION ALL case); sort keys must resolve against the output columns.
func (c *compiler) applyOrderTop(builder opBuilder, n *Node, outSc *scope, orderBy []ast.OrderItem, top ast.Expr, env *cteEnv) (opBuilder, *Node, error) {
	if len(orderBy) > 0 {
		keys := make([]exec.Scalar, len(orderBy))
		desc := make([]bool, len(orderBy))
		for i, o := range orderBy {
			s, err := c.compileExpr(o.Expr, outSc, env)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = s
			desc[i] = o.Desc
		}
		inner := builder
		n = node("Sort", n)
		builder = annotate(func(bc *buildCtx) exec.Operator {
			return &exec.SortOp{Child: inner(bc), Keys: keys, Desc: desc}
		}, n)
	}
	if top != nil {
		nScalar, err := c.compileExpr(top, &scope{parent: outSc.parent}, env)
		if err != nil {
			return nil, nil, err
		}
		inner := builder
		n = node("Top", n)
		builder = annotate(func(bc *buildCtx) exec.Operator {
			return &exec.TopOp{Child: inner(bc), N: nScalar}
		}, n)
	}
	return builder, n, nil
}

// compileAggregation builds the aggregation operator for a query block and
// returns the post-aggregation scope ("#agg".#N columns: group keys first,
// then one per distinct aggregate call).
func (c *compiler) compileAggregation(q *ast.Select, input opBuilder, inScope *scope, n *Node, env *cteEnv, aggs []aggCall) (opBuilder, *scope, *Node, error) {
	groupKeys := make([]exec.Scalar, len(q.GroupBy))
	for i, g := range q.GroupBy {
		s, err := c.compileExpr(g, inScope, env)
		if err != nil {
			return nil, nil, nil, err
		}
		groupKeys[i] = s
	}
	// Resolve group keys (and below, aggregate arguments) to input ordinals
	// where they are plain column references: the vectorized fold then reads
	// them straight out of batch columns instead of evaluating scalars per row.
	groupOrds := ordsOf(q.GroupBy, inScope)
	instances := make([]exec.AggInstance, len(aggs))
	orderSensitive := q.OrderEnforced
	allMergeable := true
	allParallelSafe := true
	for i, a := range aggs {
		inst := exec.AggInstance{Spec: a.spec, Star: a.call.Star}
		if !a.call.Star {
			for _, arg := range a.call.Args {
				s, err := c.compileExpr(arg, inScope, env)
				if err != nil {
					return nil, nil, nil, err
				}
				inst.Args = append(inst.Args, s)
			}
			inst.ArgOrds = ordsOf(a.call.Args, inScope)
		}
		if a.spec.OrderSensitive {
			orderSensitive = true
		}
		if !a.spec.Mergeable {
			allMergeable = false
		}
		if !a.spec.ParallelSafe {
			allParallelSafe = false
		}
		instances[i] = inst
	}
	outScope := &scope{parent: inScope.parent}
	for i := range q.GroupBy {
		outScope.add("#agg", fmt.Sprintf("#%d", i), sqltypes.Unknown)
	}
	for j := range aggs {
		outScope.add("#agg", fmt.Sprintf("#%d", len(q.GroupBy)+j), sqltypes.Unknown)
	}
	names := make([]string, len(aggs))
	for i, a := range aggs {
		names[i] = a.key
	}
	argList := strings.Join(names, ", ")

	wantParallel := c.opts.Parallelism > 1
	var builder opBuilder
	var label string
	if orderSensitive {
		// Eq. 6 enforcement: streaming aggregate preserving input order,
		// no parallelism.
		builder = func(bc *buildCtx) exec.Operator {
			return &exec.StreamAggOp{Child: input(bc), GroupKeys: groupKeys, Aggs: instances}
		}
		label = fmt.Sprintf("StreamAgg(keys=%d, aggs=[%s])", len(q.GroupBy), argList)
		if wantParallel {
			label += " [serial: order-sensitive aggregate]"
		}
	} else {
		// Decide whether this aggregation can be run partitioned. The
		// reason a parallel-enabled session stays serial is surfaced as an
		// EXPLAIN label suffix so plans are auditable without a debugger.
		serialReason := ""
		var scanLeaf *Node
		var scanTab *storage.Table
		if wantParallel {
			switch {
			case !allMergeable:
				serialReason = "aggregate not mergeable"
			case !allParallelSafe:
				serialReason = "aggregate not parallel-safe"
			default:
				scanLeaf, scanTab, serialReason = c.parallelInput(q, n, aggs)
			}
		}
		if wantParallel && serialReason == "" {
			workers := c.opts.Parallelism
			tab := scanTab
			target := scanLeaf
			builder = func(bc *buildCtx) exec.Operator {
				// The split is per-execution: all partitions share one row
				// snapshot (loaded once) and each worker subtree is built
				// through a buildCtx copy carrying its partition index.
				split := &exec.ScanSplit{Table: tab, NParts: workers}
				parts := make([]exec.Operator, workers)
				for i := range parts {
					wbc := *bc
					wbc.part = &scanPart{split: split, index: i, target: target}
					parts[i] = input(&wbc)
				}
				return &exec.ParallelAggOp{Parts: parts, GroupKeys: groupKeys, GroupOrds: groupOrds, Aggs: instances, Workers: workers, NoBatch: c.opts.DisableBatch}
			}
			label = fmt.Sprintf("ParallelAgg(workers=%d, keys=%d, aggs=[%s])", workers, len(q.GroupBy), argList)
			scanLeaf.Op = fmt.Sprintf("ParallelScan(%s, parts=%d)", tab.Name, workers)
			label += c.batchSuffix(n, len(q.GroupBy), groupOrds, instances)
		} else {
			builder = func(bc *buildCtx) exec.Operator {
				return &exec.HashAggOp{Child: input(bc), GroupKeys: groupKeys, GroupOrds: groupOrds, Aggs: instances, NoBatch: c.opts.DisableBatch}
			}
			label = fmt.Sprintf("HashAgg(keys=%d, aggs=[%s])", len(q.GroupBy), argList)
			if wantParallel {
				label += " [serial: " + serialReason + "]"
			}
			label += c.batchSuffix(n, len(q.GroupBy), groupOrds, instances)
		}
	}
	an := node(label, n)
	return annotate(builder, an), outScope, an, nil
}

// ordsOf resolves each expression to a current-scope input ordinal, returning
// nil unless every expression is a plain column reference binding in the
// current scope (levelsUp 0) — the contract that lets the vectorized fold
// read group keys and aggregate arguments straight out of batch columns.
func ordsOf(exprs []ast.Expr, sc *scope) []int {
	if len(exprs) == 0 {
		return nil
	}
	out := make([]int, len(exprs))
	for i, e := range exprs {
		cr, ok := e.(*ast.ColRef)
		if !ok {
			return nil
		}
		res, err := sc.resolve(cr)
		if err != nil || res.levelsUp != 0 {
			return nil
		}
		out[i] = res.ordinal
	}
	return out
}

// batchSuffix reports how an aggregation will consume its input, as an
// EXPLAIN label suffix mirroring the ` [serial: ...]` convention: ` [batch]`
// when the input chain produces batches natively end to end and the
// aggregates vectorize, or a ` [row: ...]` reason otherwise.
func (c *compiler) batchSuffix(n *Node, nKeys int, groupOrds []int, aggs []exec.AggInstance) string {
	switch {
	case c.opts.DisableBatch:
		return " [row: batch disabled]"
	case !exec.BatchWorthwhile(nKeys, groupOrds, aggs):
		return " [row: aggregate not vectorizable]"
	case !batchChain(n):
		return " [row: input not batch-capable]"
	}
	return " [batch]"
}

// batchChain statically mirrors exec.CanBatch over the explain tree:
// pass-through transformers (filters, projections, trivial derived tables)
// descend; recognized scan leaves produce batches natively. Operators the
// walk does not recognize keep the row path, exactly like an operator
// without a native NextBatch does at runtime.
func batchChain(n *Node) bool {
	for strings.HasPrefix(n.Op, "Filter") || n.Op == "Project" ||
		strings.HasPrefix(n.Op, "CommonSubquery(") || strings.HasPrefix(n.Op, "Derived(") {
		if len(n.Children) != 1 {
			return false
		}
		n = n.Children[0]
	}
	if len(n.Children) != 0 {
		return false
	}
	return strings.HasPrefix(n.Op, "Scan(") || strings.HasPrefix(n.Op, "IndexSeek(") ||
		strings.HasPrefix(n.Op, "RangeSeek(") ||
		strings.HasPrefix(n.Op, "LateScan(") || strings.HasPrefix(n.Op, "ParallelScan(")
}

// parallelRowThreshold is the minimum base-table row count (at plan time;
// cached plans are not re-costed) for a partitioned aggregation — below it
// worker startup dominates any scan overlap.
const parallelRowThreshold = 4096

// parallelInput decides whether an aggregation's input subtree can be range-
// partitioned across workers. Eligible shapes are a chain of filters,
// projections, and trivial derived tables over a single base-table scan —
// the derived-table case is exactly the shape the Aggify rewrite emits
// (SELECT Agg(...) FROM (Q) aggify_q) — with no subquery or scalar UDF in
// any expression a worker would evaluate (those run interpreted bodies on
// the owning session, which is single-threaded). It returns the scan leaf's
// explain node and table, or a human-readable reason for staying serial.
func (c *compiler) parallelInput(q *ast.Select, n *Node, aggs []aggCall) (*Node, *storage.Table, string) {
	const notPartitionable = "plan shape not partitionable"
	leaf := n
	// Prefix matches: Filter and Derived labels may carry ` [rw:rule]`
	// rewrite annotations.
	for strings.HasPrefix(leaf.Op, "Filter") || leaf.Op == "Project" || strings.HasPrefix(leaf.Op, "Derived(") {
		if len(leaf.Children) != 1 {
			return nil, nil, notPartitionable
		}
		leaf = leaf.Children[0]
	}
	if !strings.HasPrefix(leaf.Op, "Scan(") || len(leaf.Children) != 0 {
		return nil, nil, notPartitionable
	}
	tab, reason := c.parallelFrom(q)
	if reason != "" {
		return nil, nil, reason
	}
	exprs := append([]ast.Expr{q.Where}, q.GroupBy...)
	for _, a := range aggs {
		if !a.call.Star {
			exprs = append(exprs, a.call.Args...)
		}
	}
	if unsafe := c.workerUnsafe(exprs); unsafe != "" {
		return nil, nil, unsafe
	}
	if tab.RowCount() < parallelRowThreshold {
		return nil, nil, "small input"
	}
	return leaf, tab, ""
}

// parallelFrom resolves an aggregation query's FROM chain down to its base
// table, descending through trivial derived tables (single source, no
// DISTINCT/TOP/GROUP BY/HAVING/ORDER BY/UNION) and vetting every nested
// expression a worker would evaluate. It returns the base table or a reason
// for staying serial.
func (c *compiler) parallelFrom(q *ast.Select) (*storage.Table, string) {
	const notPartitionable = "plan shape not partitionable"
	for {
		if len(q.From) != 1 {
			return nil, notPartitionable
		}
		switch ref := q.From[0].(type) {
		case *ast.TableRef:
			if lateBound(ref.Name) {
				// Table variables / temp tables are late-bound per
				// invocation, so their size is unknown at plan time; keep
				// them serial.
				return nil, "late-bound table"
			}
			tab, err := c.cat.ResolveTable(ref.Name)
			if err != nil {
				return nil, notPartitionable
			}
			return tab, ""
		case *ast.SubqueryRef:
			inner := ref.Query
			if inner == nil || len(inner.With) > 0 || inner.Distinct || inner.Top != nil ||
				len(inner.GroupBy) > 0 || inner.Having != nil || len(inner.OrderBy) > 0 ||
				inner.Union != nil {
				return nil, notPartitionable
			}
			exprs := []ast.Expr{inner.Where}
			for _, it := range inner.Items {
				exprs = append(exprs, it.Expr)
			}
			if unsafe := c.workerUnsafe(exprs); unsafe != "" {
				return nil, unsafe
			}
			q = inner
		default:
			return nil, notPartitionable
		}
	}
}

// workerUnsafe scans expressions a parallel worker would evaluate for
// constructs that must run on the single-threaded owning session.
func (c *compiler) workerUnsafe(exprs []ast.Expr) string {
	unsafe := ""
	for _, e := range exprs {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			switch t := x.(type) {
			case *ast.Subquery:
				unsafe = "subquery in worker expression"
				return false
			case *ast.InExpr:
				if t.Query != nil {
					unsafe = "subquery in worker expression"
					return false
				}
			case *ast.FuncCall:
				if c.cat.ScalarFuncExists(t.Name) {
					unsafe = "scalar UDF in worker expression"
					return false
				}
			}
			return true
		})
		if unsafe != "" {
			return unsafe
		}
	}
	return ""
}
