package plan

import (
	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"fmt"
)

// splitConjuncts flattens a predicate into its AND-ed conjuncts.
func splitConjuncts(e ast.Expr) []ast.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*ast.BinExpr); ok && b.Op == sqltypes.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []ast.Expr{e}
}

// fromUnit is one item of a comma-joined FROM list before physical
// compilation.
type fromUnit struct {
	pos     int
	te      ast.TableExpr
	binding string   // visible qualifier ("" for explicit joins)
	cols    []string // output column names (for conjunct classification)
	tab     *storage.Table
	preds   []ast.Expr // single-unit conjuncts assigned to this unit
}

// hasCol reports whether the unit exposes the (possibly qualified) column.
func (u *fromUnit) hasCol(ref *ast.ColRef) bool {
	if ref.Table != "" && ref.Table != u.binding {
		return false
	}
	for _, c := range u.cols {
		if c == ref.Name {
			return true
		}
	}
	return false
}

// outputNames derives the output column names of a table expression without
// compiling it (used for conjunct classification before join ordering).
func (c *compiler) outputNames(te ast.TableExpr, env *cteEnv) ([]string, error) {
	switch t := te.(type) {
	case *ast.TableRef:
		if b := env.lookup(t.Name); b != nil {
			out := make([]string, len(b.cols))
			for i, col := range b.cols {
				out[i] = col.Name
			}
			return out, nil
		}
		tab, err := c.cat.ResolveTable(t.Name)
		if err != nil {
			return nil, err
		}
		return tab.Schema.Names(), nil
	case *ast.SubqueryRef:
		return c.selectOutputNames(t.Query, env)
	case *ast.Join:
		l, err := c.outputNames(t.L, env)
		if err != nil {
			return nil, err
		}
		r, err := c.outputNames(t.R, env)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	}
	return nil, errf("unknown table expression %T", te)
}

// selectOutputNames derives a query's output column names without compiling.
func (c *compiler) selectOutputNames(q *ast.Select, env *cteEnv) ([]string, error) {
	var err error
	if env, err = c.registerCTEs(q, nil, env); err != nil {
		return nil, err
	}
	var out []string
	for _, it := range q.Items {
		if it.Star {
			for _, te := range q.From {
				names, err := c.outputNames(te, env)
				if err != nil {
					return nil, err
				}
				if it.Alias != "" && ast.BindingName(te) != it.Alias {
					continue
				}
				out = append(out, names...)
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ast.ColRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", len(out)+1)
			}
		}
		out = append(out, name)
	}
	return out, nil
}

// unitsOf returns the set of unit indexes referenced by e, conservatively:
// an unqualified name matching several units counts for all of them, and
// subqueries are descended into (their correlated references matter here).
func unitsOf(e ast.Expr, units []*fromUnit) map[int]bool {
	out := map[int]bool{}
	ast.WalkExpr(e, func(x ast.Expr) bool {
		cr, ok := x.(*ast.ColRef)
		if !ok {
			return true
		}
		for i, u := range units {
			if u.hasCol(cr) {
				out[i] = true
			}
		}
		return true
	})
	return out
}

// lateBound reports whether a table name resolves at execution time
// (table variables and temp tables).
func lateBound(name string) bool {
	return len(name) > 0 && (name[0] == '@' || name[0] == '#')
}

// eqSides splits an equality conjunct into its two sides; ok is false for
// non-equality predicates.
func eqSides(e ast.Expr) (l, r ast.Expr, ok bool) {
	b, isBin := e.(*ast.BinExpr)
	if !isBin || b.Op != sqltypes.OpEq {
		return nil, nil, false
	}
	return b.L, b.R, true
}

// compileFrom builds the physical access path for a FROM list and WHERE
// clause: greedy join ordering over the comma-joined units, index-seek
// selection for sargable predicates, hash joins for equi-predicates, and
// filter placement for everything else. All WHERE conjuncts are consumed.
func (c *compiler) compileFrom(items []ast.TableExpr, where ast.Expr, parent *scope, env *cteEnv) (opBuilder, *scope, *Node, error) {
	if len(items) == 0 {
		sc := &scope{parent: parent}
		n := node("OneRow")
		builder := annotate(func(*buildCtx) exec.Operator { return &exec.OneRowOp{} }, n)
		return c.applyFilter(builder, n, where, sc, env)
	}

	// Build unit metadata.
	units := make([]*fromUnit, len(items))
	for i, te := range items {
		cols, err := c.outputNames(te, env)
		if err != nil {
			return nil, nil, nil, err
		}
		u := &fromUnit{pos: i, te: te, binding: ast.BindingName(te), cols: cols}
		if tr, ok := te.(*ast.TableRef); ok && env.lookup(tr.Name) == nil && !lateBound(tr.Name) {
			if tab, err := c.cat.ResolveTable(tr.Name); err == nil {
				u.tab = tab
			}
		}
		units[i] = u
	}

	conjuncts := splitConjuncts(where)
	type conj struct {
		expr    ast.Expr
		units   map[int]bool
		applied bool
	}
	conjs := make([]*conj, len(conjuncts))
	for i, e := range conjuncts {
		conjs[i] = &conj{expr: e, units: unitsOf(e, units)}
	}

	// Assign single-unit conjuncts to their units.
	for _, cj := range conjs {
		if len(cj.units) == 1 {
			for i := range cj.units {
				units[i].preds = append(units[i].preds, cj.expr)
			}
			cj.applied = true
		}
	}

	// sargableIndexed reports whether the unit has an indexed, constant
	// (unit-free) equality predicate and returns its column.
	sargableIndexed := func(u *fromUnit) (col string, key ast.Expr, rest []ast.Expr, found bool) {
		rest = append(rest, u.preds...)
		if u.tab == nil {
			return "", nil, rest, false
		}
		for i, p := range u.preds {
			l, r, ok := eqSides(p)
			if !ok {
				continue
			}
			for _, flip := range []struct{ col, key ast.Expr }{{l, r}, {r, l}} {
				cr, isCol := flip.col.(*ast.ColRef)
				if !isCol || !u.hasCol(cr) {
					continue
				}
				if len(unitsOf(flip.key, units)) != 0 {
					continue
				}
				if u.tab.Index(cr.Name) == nil {
					continue
				}
				rest = append(rest[:0], u.preds[:i]...)
				rest = append(rest, u.preds[i+1:]...)
				return cr.Name, flip.key, rest, true
			}
		}
		return "", nil, rest, false
	}

	// Pick the starting unit: prefer an indexed sargable predicate, then any
	// filtered unit, then the first.
	start := -1
	for i, u := range units {
		if _, _, _, ok := sargableIndexed(u); ok {
			start = i
			break
		}
	}
	if start < 0 {
		for i, u := range units {
			if len(u.preds) > 0 {
				start = i
				break
			}
		}
	}
	if start < 0 {
		start = 0
	}

	builder, sc, n, err := c.compileUnit(units[start], parent, env, false, sargableIndexed)
	if err != nil {
		return nil, nil, nil, err
	}
	joined := map[int]bool{start: true}
	joinOrder := []int{start}
	width := sc.width()

	remaining := len(units) - 1
	for remaining > 0 {
		// Find a unit connected to the joined set by equality conjuncts.
		type connection struct {
			unit     int
			leftExpr []ast.Expr // sides over joined units (or unit-free)
			rightCol []ast.Expr // sides over the candidate unit
			conjRefs []*conj
		}
		var best *connection
		for ui := range units {
			if joined[ui] {
				continue
			}
			conn := &connection{unit: ui}
			for _, cj := range conjs {
				if cj.applied {
					continue
				}
				// All referenced units must be the candidate or already joined.
				okUnits := true
				refsCandidate := false
				for ref := range cj.units {
					if ref == ui {
						refsCandidate = true
					} else if !joined[ref] {
						okUnits = false
					}
				}
				if !okUnits || !refsCandidate {
					continue
				}
				l, r, ok := eqSides(cj.expr)
				if !ok {
					continue
				}
				lu, ru := unitsOf(l, units), unitsOf(r, units)
				onlyCandidate := func(m map[int]bool) bool { return len(m) == 1 && m[ui] }
				noCandidate := func(m map[int]bool) bool { return !m[ui] }
				switch {
				case onlyCandidate(ru) && noCandidate(lu):
					conn.leftExpr = append(conn.leftExpr, l)
					conn.rightCol = append(conn.rightCol, r)
					conn.conjRefs = append(conn.conjRefs, cj)
				case onlyCandidate(lu) && noCandidate(ru):
					conn.leftExpr = append(conn.leftExpr, r)
					conn.rightCol = append(conn.rightCol, l)
					conn.conjRefs = append(conn.conjRefs, cj)
				}
			}
			if len(conn.conjRefs) > 0 {
				best = conn
				break
			}
		}

		if best == nil {
			// No connection: cross join with the first remaining unit
			// (hash join with no keys).
			for ui := range units {
				if !joined[ui] {
					best = &connection{unit: ui}
					break
				}
			}
		}
		u := units[best.unit]

		// Prefer an index nested-loop join when the unit has an index on a
		// plain join column; otherwise hash join.
		idxCol := ""
		idxKey := -1
		if u.tab != nil {
			for i, rc := range best.rightCol {
				if cr, ok := rc.(*ast.ColRef); ok && u.tab.Index(cr.Name) != nil {
					idxCol, idxKey = cr.Name, i
					break
				}
			}
		}

		if idxCol != "" {
			// Index NL join: the right side sees the joined row pushed one
			// outer level down.
			rightBuilder, rightScope, rightNode, err := c.compileUnitSeek(u, parent, env, idxCol, best.leftExpr[idxKey], sc)
			if err != nil {
				return nil, nil, nil, err
			}
			combined := concatScopes(sc, rightScope)
			// Residual join conjuncts evaluated on the combined row.
			var residuals []exec.Scalar
			for i, cj := range best.conjRefs {
				cj.applied = true
				if i == idxKey {
					continue
				}
				s, err := c.compileExpr(cj.expr, combined, env)
				if err != nil {
					return nil, nil, nil, err
				}
				residuals = append(residuals, s)
			}
			on := andScalars(residuals)
			left := builder
			lw, rw := width, rightScope.width()
			n = node(fmt.Sprintf("IndexNLJoin(%s.%s)", u.tab.Name, idxCol), n, rightNode)
			builder = annotate(func(bc *buildCtx) exec.Operator {
				return &exec.NLJoinOp{Left: left(bc), Right: rightBuilder(bc), LeftWidth: lw, RightWidth: rw, On: on}
			}, n)
			sc = combined
			width = sc.width()
		} else {
			rightBuilder, rightScope, rightNode, err := c.compileUnit(u, parent, env, false, sargableIndexed)
			if err != nil {
				return nil, nil, nil, err
			}
			var leftKeys, rightKeys []exec.Scalar
			for i, cj := range best.conjRefs {
				cj.applied = true
				lk, err := c.compileExpr(best.leftExpr[i], sc, env)
				if err != nil {
					return nil, nil, nil, err
				}
				rk, err := c.compileExpr(best.rightCol[i], rightScope, env)
				if err != nil {
					return nil, nil, nil, err
				}
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
			}
			left := builder
			lw, rw := width, rightScope.width()
			label := "HashJoin"
			if len(best.conjRefs) == 0 {
				label = "CrossJoin"
			}
			n = node(label, n, rightNode)
			builder = annotate(func(bc *buildCtx) exec.Operator {
				return &exec.HashJoinOp{
					Left: left(bc), Right: rightBuilder(bc),
					LeftWidth: lw, RightWidth: rw,
					LeftKeys: leftKeys, RightKeys: rightKeys,
				}
			}, n)
			sc = concatScopes(sc, rightScope)
			width = sc.width()
		}
		joined[best.unit] = true
		joinOrder = append(joinOrder, best.unit)
		remaining--

		// Apply conjuncts that became fully available.
		for _, cj := range conjs {
			if cj.applied {
				continue
			}
			ready := true
			for ref := range cj.units {
				if !joined[ref] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			cj.applied = true
			pred, err := c.compileExpr(cj.expr, sc, env)
			if err != nil {
				return nil, nil, nil, err
			}
			inner := builder
			n = node(c.filterLabel(cj.expr), n)
			builder = annotate(func(bc *buildCtx) exec.Operator {
				return &exec.FilterOp{Child: inner(bc), Pred: pred}
			}, n)
		}
	}

	// Remaining conjuncts (unit-free: variables, constants, outer refs).
	for _, cj := range conjs {
		if cj.applied {
			continue
		}
		cj.applied = true
		pred, err := c.compileExpr(cj.expr, sc, env)
		if err != nil {
			return nil, nil, nil, err
		}
		inner := builder
		n = node(c.filterLabel(cj.expr), n)
		builder = annotate(func(bc *buildCtx) exec.Operator {
			return &exec.FilterOp{Child: inner(bc), Pred: pred}
		}, n)
	}

	// Restore the user-visible FROM column order if greedy ordering
	// permuted the units.
	permuted := false
	for i, p := range joinOrder {
		if unitAtOrder := units[p].pos; unitAtOrder != i {
			permuted = true
			break
		}
	}
	if permuted {
		// Compute, for each unit in original order, where its columns start
		// in the joined row.
		offsets := make([]int, len(units))
		off := 0
		for _, p := range joinOrder {
			offsets[p] = off
			off += len(units[p].cols)
		}
		reordered := &scope{parent: parent}
		var exprs []exec.Scalar
		for _, u := range units {
			base := offsets[u.pos]
			for ci, cn := range u.cols {
				exprs = append(exprs, exec.ColScalar(base+ci))
				reordered.add(u.binding, cn, sqltypes.Unknown)
			}
		}
		inner := builder
		builder = func(bc *buildCtx) exec.Operator {
			return &exec.ProjectOp{Child: inner(bc), Exprs: exprs}
		}
		sc = reordered
	}
	return builder, sc, n, nil
}

// andScalars combines predicates with short-circuit AND; nil for empty.
func andScalars(preds []exec.Scalar) exec.Scalar {
	if len(preds) == 0 {
		return nil
	}
	if len(preds) == 1 {
		return preds[0]
	}
	return func(ctx *exec.Ctx, row exec.Row) (sqltypes.Value, error) {
		for _, p := range preds {
			v, err := p(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if !v.Truthy() {
				return v, nil
			}
		}
		return sqltypes.NewBool(true), nil
	}
}

// applyFilter wraps a builder with a WHERE filter (if any).
func (c *compiler) applyFilter(builder opBuilder, n *Node, where ast.Expr, sc *scope, env *cteEnv) (opBuilder, *scope, *Node, error) {
	if where == nil {
		return builder, sc, n, nil
	}
	pred, err := c.compileExpr(where, sc, env)
	if err != nil {
		return nil, nil, nil, err
	}
	inner := builder
	fn := node(c.filterLabel(where), n)
	builder = annotate(func(bc *buildCtx) exec.Operator {
		return &exec.FilterOp{Child: inner(bc), Pred: pred}
	}, fn)
	return builder, sc, fn, nil
}

// compileUnit compiles one FROM unit with its assigned single-unit
// predicates, choosing an index seek for a constant sargable predicate when
// available. nlRight inserts a phantom scope level for units placed as the
// right side of a nested-loop join.
func (c *compiler) compileUnit(u *fromUnit, parent *scope, env *cteEnv, nlRight bool,
	sargable func(u *fromUnit) (string, ast.Expr, []ast.Expr, bool)) (opBuilder, *scope, *Node, error) {

	unitParent := parent
	if nlRight {
		unitParent = &scope{parent: parent}
	}
	var builder opBuilder
	var n *Node
	sc := &scope{parent: unitParent}
	rest := u.preds

	switch te := u.te.(type) {
	case *ast.TableRef:
		if lateBound(te.Name) {
			tab, err := c.cat.ResolveTable(te.Name)
			if err != nil {
				return nil, nil, nil, err
			}
			for _, col := range tab.Schema.Columns {
				sc.add(u.binding, col.Name, col.Type)
			}
			name := te.Name
			sn := node("LateScan(" + name + ")")
			n = sn
			builder = annotate(func(bc *buildCtx) exec.Operator {
				if p := bc.part; p != nil && p.target == sn {
					return &exec.ParallelScanOp{Split: p.split, Part: p.index}
				}
				return &exec.LateScanOp{Name: name}
			}, sn)
			break
		}
		if b := env.lookup(te.Name); b != nil {
			for _, col := range b.cols {
				sc.add(u.binding, col.Name, col.Type)
			}
			if b.deltaKey != nil {
				key := b.deltaKey
				n = node("DeltaScan(" + te.Name + ")")
				builder = annotate(func(bc *buildCtx) exec.Operator {
					return &exec.DeltaScanOp{Source: bc.delta(key)}
				}, n)
			} else {
				var err error
				builder, n, err = b.instantiate()
				if err != nil {
					return nil, nil, nil, err
				}
			}
		} else {
			tab, err := c.cat.ResolveTable(te.Name)
			if err != nil {
				return nil, nil, nil, err
			}
			for _, col := range tab.Schema.Columns {
				sc.add(u.binding, col.Name, col.Type)
			}
			if h := c.accessHints[te]; h != nil {
				hb, hn, hrest, err := c.compileHinted(u, h, tab, unitParent, env)
				if err != nil {
					return nil, nil, nil, err
				}
				builder, n, rest = hb, hn, hrest
				break
			}
			if col, key, remaining, ok := sargable(u); ok {
				keyScalar, err := c.compileExpr(key, &scope{parent: unitParent}, env)
				if err != nil {
					return nil, nil, nil, err
				}
				n = node(fmt.Sprintf("IndexSeek(%s.%s)", tab.Name, col) + c.rwSuffix(c.marks[consumedPred(u.preds, remaining)]))
				builder = annotate(func(bc *buildCtx) exec.Operator {
					return &exec.IndexSeekOp{Table: tab, Column: col, Key: keyScalar}
				}, n)
				rest = remaining
			} else {
				sn := node("Scan(" + tab.Name + ")")
				n = sn
				builder = annotate(func(bc *buildCtx) exec.Operator {
					if p := bc.part; p != nil && p.target == sn {
						return &exec.ParallelScanOp{Split: p.split, Part: p.index}
					}
					return &exec.ScanOp{Table: tab}
				}, sn)
			}
		}
	case *ast.SubqueryRef:
		b, cols, sn, err := c.compileSelect(te.Query, unitParent, env)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, cn := range cols {
			sc.add(u.binding, cn, sqltypes.Unknown)
		}
		n = node("Derived("+te.Alias+")"+c.rwSuffix(c.selMarks[te.Query]), sn)
		builder = annotate(b, n)
	case *ast.Join:
		b, jsc, jn, err := c.compileJoinExpr(te, unitParent, env)
		if err != nil {
			return nil, nil, nil, err
		}
		builder = b
		sc = jsc
		n = jn
	default:
		return nil, nil, nil, errf("unknown table expression %T", u.te)
	}

	for _, p := range rest {
		pred, err := c.compileExpr(p, sc, env)
		if err != nil {
			return nil, nil, nil, err
		}
		inner := builder
		n = node(c.filterLabel(p), n)
		builder = annotate(func(bc *buildCtx) exec.Operator {
			return &exec.FilterOp{Child: inner(bc), Pred: pred}
		}, n)
	}
	return builder, sc, n, nil
}

// compileHinted compiles a base-table unit along the access path the
// choose_access_path pass pinned on it: a forced full scan, an index
// equality seek, or an ordered-index range seek. Predicates whose work the
// chosen path absorbs are dropped from the residual filter list.
func (c *compiler) compileHinted(u *fromUnit, h *accessHint, tab *storage.Table, unitParent *scope, env *cteEnv) (opBuilder, *Node, []ast.Expr, error) {
	rule := ruleName(RuleChooseAccessPath)
	switch h.kind {
	case accessEq:
		keyScalar, err := c.compileExpr(h.key, &scope{parent: unitParent}, env)
		if err != nil {
			return nil, nil, nil, err
		}
		mark := addMark(c.marks[h.eqConj], rule)
		n := node(fmt.Sprintf("IndexSeek(%s.%s)", tab.Name, h.col) + c.rwSuffix(mark) + costSuffix(h.cost))
		builder := annotate(func(bc *buildCtx) exec.Operator {
			return &exec.IndexSeekOp{Table: tab, Column: h.col, Key: keyScalar}
		}, n)
		return builder, n, withoutPreds(u.preds, h.eqConj), nil
	case accessRange:
		var lo, hi exec.Scalar
		var err error
		if h.lo != nil {
			if lo, err = c.compileExpr(h.lo, &scope{parent: unitParent}, env); err != nil {
				return nil, nil, nil, err
			}
		}
		if h.hi != nil {
			if hi, err = c.compileExpr(h.hi, &scope{parent: unitParent}, env); err != nil {
				return nil, nil, nil, err
			}
		}
		mark := ""
		for _, cj := range []ast.Expr{h.loConj, h.hiConj} {
			if cj != nil && c.marks[cj] != "" {
				mark = addMark(mark, c.marks[cj])
			}
		}
		mark = addMark(mark, rule)
		n := node(fmt.Sprintf("RangeSeek(%s.%s)", tab.Name, h.col) + c.rwSuffix(mark) + costSuffix(h.cost))
		builder := annotate(func(bc *buildCtx) exec.Operator {
			return &exec.RangeSeekOp{Table: tab, Column: h.col, Lo: lo, Hi: hi, LoStrict: h.loStrict, HiStrict: h.hiStrict}
		}, n)
		return builder, n, withoutPreds(u.preds, h.loConj, h.hiConj), nil
	}
	// Forced full scan: cheaper than any seek candidate. Keep the node
	// identity usable as a parallel-scan partition target, exactly like an
	// unhinted scan.
	sn := node("Scan(" + tab.Name + ")" + c.rwSuffix(rule) + costSuffix(h.cost))
	builder := annotate(func(bc *buildCtx) exec.Operator {
		if p := bc.part; p != nil && p.target == sn {
			return &exec.ParallelScanOp{Split: p.split, Part: p.index}
		}
		return &exec.ScanOp{Table: tab}
	}, sn)
	return builder, sn, u.preds, nil
}

// withoutPreds filters preds down to the members not absorbed by a seek,
// compared by pointer.
func withoutPreds(preds []ast.Expr, drop ...ast.Expr) []ast.Expr {
	var out []ast.Expr
	for _, p := range preds {
		used := false
		for _, d := range drop {
			if d != nil && d == p {
				used = true
				break
			}
		}
		if !used {
			out = append(out, p)
		}
	}
	return out
}

// consumedPred returns the predicate an index seek absorbed: the one member
// of preds missing from remaining (nil when none), compared by pointer.
func consumedPred(preds, remaining []ast.Expr) ast.Expr {
	for _, p := range preds {
		used := false
		for _, r := range remaining {
			if r == p {
				used = true
				break
			}
		}
		if !used {
			return p
		}
	}
	return nil
}

// compileUnitSeek compiles a unit as the right side of an index nested-loop
// join: an index seek keyed by an expression over the joined row (one outer
// level down), with the unit's own predicates as filters above it.
func (c *compiler) compileUnitSeek(u *fromUnit, parent *scope, env *cteEnv, col string, key ast.Expr, joinedScope *scope) (opBuilder, *scope, *Node, error) {
	// The key references the joined row, which the NL join pushes one level
	// onto the outer stack: compile it against an empty scope whose parent
	// is the joined scope.
	keyScalar, err := c.compileExpr(key, &scope{parent: joinedScope}, env)
	if err != nil {
		return nil, nil, nil, err
	}
	tab := u.tab
	unitParent := &scope{parent: parent}
	sc := &scope{parent: unitParent}
	for _, cdef := range tab.Schema.Columns {
		sc.add(u.binding, cdef.Name, cdef.Type)
	}
	n := node(fmt.Sprintf("IndexSeek(%s.%s)", tab.Name, col))
	builder := annotate(func(bc *buildCtx) exec.Operator {
		return &exec.IndexSeekOp{Table: tab, Column: col, Key: keyScalar}
	}, n)
	for _, p := range u.preds {
		pred, err := c.compileExpr(p, sc, env)
		if err != nil {
			return nil, nil, nil, err
		}
		inner := builder
		n = node(c.filterLabel(p), n)
		builder = annotate(func(bc *buildCtx) exec.Operator {
			return &exec.FilterOp{Child: inner(bc), Pred: pred}
		}, n)
	}
	return builder, sc, n, nil
}

// compileJoinExpr compiles an explicit ANSI join tree.
func (c *compiler) compileJoinExpr(j *ast.Join, parent *scope, env *cteEnv) (opBuilder, *scope, *Node, error) {
	leftB, leftSc, leftN, err := c.compileTableSource(j.L, parent, env)
	if err != nil {
		return nil, nil, nil, err
	}

	// Try to split the ON condition into equi-key pairs.
	leftNames, err := c.outputNames(j.L, env)
	if err != nil {
		return nil, nil, nil, err
	}
	rightNames, err := c.outputNames(j.R, env)
	if err != nil {
		return nil, nil, nil, err
	}
	lUnit := &fromUnit{te: j.L, binding: ast.BindingName(j.L), cols: leftNames}
	rUnit := &fromUnit{te: j.R, binding: ast.BindingName(j.R), cols: rightNames}
	pair := []*fromUnit{lUnit, rUnit}

	var eqL, eqR, residual []ast.Expr
	for _, cj := range splitConjuncts(j.On) {
		l, r, ok := eqSides(cj)
		if !ok {
			residual = append(residual, cj)
			continue
		}
		lu, ru := unitsOf(l, pair), unitsOf(r, pair)
		switch {
		case len(lu) == 1 && lu[0] && len(ru) == 1 && ru[1]:
			eqL = append(eqL, l)
			eqR = append(eqR, r)
		case len(lu) == 1 && lu[1] && len(ru) == 1 && ru[0]:
			eqL = append(eqL, r)
			eqR = append(eqR, l)
		default:
			residual = append(residual, cj)
		}
	}

	if len(eqL) > 0 {
		// Hash join (no outer-level shift for the right side).
		rightB, rightSc, rightN, err := c.compileTableSource(j.R, parent, env)
		if err != nil {
			return nil, nil, nil, err
		}
		combined := concatScopes(leftSc, rightSc)
		var leftKeys, rightKeys []exec.Scalar
		for i := range eqL {
			lk, err := c.compileExpr(eqL[i], leftSc, env)
			if err != nil {
				return nil, nil, nil, err
			}
			rk, err := c.compileExpr(eqR[i], rightSc, env)
			if err != nil {
				return nil, nil, nil, err
			}
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
		}
		var res []exec.Scalar
		for _, e := range residual {
			s, err := c.compileExpr(e, combined, env)
			if err != nil {
				return nil, nil, nil, err
			}
			res = append(res, s)
		}
		lw, rw := leftSc.width(), rightSc.width()
		outer := j.Kind == ast.JoinLeft
		jn := node("HashJoin("+j.Kind.String()+")"+c.joinMarks[j], leftN, rightN)
		builder := annotate(func(bc *buildCtx) exec.Operator {
			return &exec.HashJoinOp{
				Left: leftB(bc), Right: rightB(bc),
				LeftWidth: lw, RightWidth: rw,
				LeftKeys: leftKeys, RightKeys: rightKeys,
				Residual: andScalars(res), LeftOuter: outer,
			}
		}, jn)
		return builder, combined, jn, nil
	}

	// Nested-loop join; the right side is re-opened per left row with the
	// left row pushed one outer level down.
	rightB, rightSc, rightN, err := c.compileTableSource(j.R, &scope{parent: parent}, env)
	if err != nil {
		return nil, nil, nil, err
	}
	// Lift the right scope so the combined scope chains to the real parent.
	liftedRight := &scope{parent: parent, cols: rightSc.cols}
	combined := concatScopes(leftSc, liftedRight)
	var on exec.Scalar
	if j.On != nil {
		if on, err = c.compileExpr(j.On, combined, env); err != nil {
			return nil, nil, nil, err
		}
	}
	lw, rw := leftSc.width(), rightSc.width()
	outer := j.Kind == ast.JoinLeft
	jn := node("NLJoin("+j.Kind.String()+")"+c.joinMarks[j], leftN, rightN)
	builder := annotate(func(bc *buildCtx) exec.Operator {
		return &exec.NLJoinOp{Left: leftB(bc), Right: rightB(bc), LeftWidth: lw, RightWidth: rw, On: on, LeftOuter: outer}
	}, jn)
	return builder, combined, jn, nil
}

// compileTableSource compiles a table expression without predicate
// assignment (explicit-join children).
func (c *compiler) compileTableSource(te ast.TableExpr, parent *scope, env *cteEnv) (opBuilder, *scope, *Node, error) {
	cols, err := c.outputNames(te, env)
	if err != nil {
		return nil, nil, nil, err
	}
	u := &fromUnit{te: te, binding: ast.BindingName(te), cols: cols}
	if tr, ok := te.(*ast.TableRef); ok && env.lookup(tr.Name) == nil && !lateBound(tr.Name) {
		if tab, err := c.cat.ResolveTable(tr.Name); err == nil {
			u.tab = tab
		}
	}
	noSarg := func(*fromUnit) (string, ast.Expr, []ast.Expr, bool) { return "", nil, nil, false }
	return c.compileUnit(u, parent, env, false, noSarg)
}
