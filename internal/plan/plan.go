// Package plan compiles query ASTs into executable physical operator trees
// in three stages: apply decorrelation (the rewrite that gives the paper's
// "Aggify+" configuration its set-oriented plans), a rule-based logical
// rewrite pass over a small relational IR (logical.go + rewrite.go: constant
// folding, predicate pushdown, projection pruning, redundant-sort
// elimination, each individually toggleable and reported in EXPLAIN), and
// physical compilation: predicate placement, index-seek selection,
// join-order and join-algorithm choice, scalar-subquery apply, parallel
// aggregation eligibility, and the paper's Eq. 6 streaming-aggregate
// enforcement for order-sensitive custom aggregates.
package plan

import (
	"fmt"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Catalog is the planner's view of schema objects; the engine implements it.
type Catalog interface {
	// ResolveTable returns a base table, temp table, or table variable.
	ResolveTable(name string) (*storage.Table, error)
	// AggSpec returns the aggregate function spec for name, if any
	// (built-in or custom).
	AggSpec(name string) (*exec.AggSpec, bool)
	// ScalarFuncExists reports whether a scalar UDF with this name exists
	// (built-in scalar functions are handled by the planner itself).
	ScalarFuncExists(name string) bool
}

// Options control optimizer behaviour; the zero value is the default
// configuration used by the engine.
type Options struct {
	// DisableDecorrelation turns off the apply-decorrelation rewrite
	// (for the Aggify+ ablation). It also disables logical rewrite rules
	// that assume decorrelated shapes (RulePushFilterDecor), so the
	// ablation measures what it claims.
	DisableDecorrelation bool
	// DisableRules turns off individual logical rewrite rules (rewrite.go);
	// RuleAll disables the whole pass. A bitmask rather than a slice so
	// Options stays usable as a plan-cache key.
	DisableRules RuleSet
	// Parallelism > 1 allows parallel aggregation (via the aggregate Merge
	// contract) for order-insensitive aggregations over large inputs.
	Parallelism int
	// DisableBatch forces row-at-a-time execution even where the vectorized
	// batch path would apply (benchmarks and property tests run both paths
	// and compare byte for byte).
	DisableBatch bool
	// MaxRecursion caps recursive CTE iterations (0 = engine default).
	MaxRecursion int
}

// Plan is a compiled, reusable query plan. Build instantiates a fresh
// operator tree, so a Plan may be executed many times and reentrantly.
type Plan struct {
	// Columns are the output column names.
	Columns []string
	// Explain describes the chosen physical plan.
	Explain *Node
	// Rewrites lists the logical rewrite rules that fired while normalizing
	// this query, as "rule(count)" in rule order; empty when the pass left
	// the query untouched. Surfaced as the EXPLAIN `rewrites:` header.
	Rewrites []string

	// Parallel and Batched summarize the physical plan shape (derived from
	// the explain tree at compile time): whether any operator runs a
	// parallel aggregation, and whether any aggregation consumes columnar
	// batches. The engine's statement stats aggregate them per fingerprint.
	Parallel bool
	Batched  bool

	// Stamps records the stats version of every base table this plan was
	// costed against at compile time. The engine plan cache compares them
	// to the tables' current versions and replans when the drift exceeds
	// its staleness threshold.
	Stamps []TableStamp

	build opBuilder
}

// TableStamp is one table's stats version at plan-compile time.
type TableStamp struct {
	Table        *storage.Table
	StatsVersion uint64
}

// Build instantiates the physical operator tree for one execution.
func (p *Plan) Build() exec.Operator {
	return p.build(&buildCtx{})
}

// Run builds and drains the plan.
func (p *Plan) Run(ctx *exec.Ctx) ([]exec.Row, error) {
	return exec.Drain(ctx, p.Build())
}

// BuildInstrumented instantiates the operator tree with every annotated
// operator wrapped in an exec.InstrumentedOp. The returned Instrumentation
// owns the per-execution counters: plans are cached and shared across
// sessions, so runtime stats never live on the Plan or its explain Nodes.
func (p *Plan) BuildInstrumented() (exec.Operator, *Instrumentation) {
	ins := &Instrumentation{Root: p.Explain, Stats: map[*Node]*exec.OpStats{}}
	bc := &buildCtx{instr: func(n *Node, op exec.Operator) exec.Operator {
		st, ok := ins.Stats[n]
		if !ok {
			st = &exec.OpStats{}
			ins.Stats[n] = st
		}
		return &exec.InstrumentedOp{Child: op, Stats: st}
	}}
	return p.build(bc), ins
}

// RunInstrumented builds an instrumented tree, drains it, and returns the
// rows together with the collected per-operator statistics.
func (p *Plan) RunInstrumented(ctx *exec.Ctx) ([]exec.Row, *Instrumentation, error) {
	op, ins := p.BuildInstrumented()
	rows, err := exec.Drain(ctx, op)
	return rows, ins, err
}

// Node is one node of the explain tree.
type Node struct {
	Op       string // operator name, e.g. "IndexSeek(partsupp.ps_partkey)"
	Children []*Node
}

// String renders the explain tree with indentation.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op)
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// Contains reports whether any node's Op contains the substring s.
func (n *Node) Contains(s string) bool {
	if strings.Contains(n.Op, s) {
		return true
	}
	for _, c := range n.Children {
		if c.Contains(s) {
			return true
		}
	}
	return false
}

func node(op string, children ...*Node) *Node { return &Node{Op: op, Children: children} }

// Instrumentation carries the runtime statistics of one instrumented
// execution, keyed by explain node.
type Instrumentation struct {
	// Root is the plan's explain tree.
	Root *Node
	// Stats maps each annotated node to its runtime counters. Nodes absent
	// from the map were never instantiated (or carry no operator of their
	// own, like hidden projection stripping).
	Stats map[*Node]*exec.OpStats
}

// Render prints the explain tree annotated with runtime counters. Reads are
// exclusive (the node's inclusive delta minus its instrumented descendants),
// so summing the reads column over all printed nodes reproduces the
// execution's session-level storage.Stats delta; time is inclusive of the
// subtree.
func (ins *Instrumentation) Render() string {
	var b strings.Builder
	ins.render(&b, ins.Root, 0)
	return b.String()
}

func (ins *Instrumentation) render(b *strings.Builder, n *Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op)
	if st, ok := ins.Stats[n]; ok {
		if st.Loops() == 0 {
			b.WriteString(" (never executed)")
		} else {
			ex := st.Reads().Sub(ins.childInclusive(n))
			fmt.Fprintf(b, " (rows=%d loops=%d time=%s reads=%d", st.Rows(), st.Loops(), st.Time(), ex.LogicalReads)
			if ex.WorktableWrites != 0 || ex.WorktableReads != 0 {
				fmt.Fprintf(b, " worktable w=%d r=%d", ex.WorktableWrites, ex.WorktableReads)
			}
			if ex.IndexSeeks != 0 {
				fmt.Fprintf(b, " seeks=%d", ex.IndexSeeks)
			}
			if st.PeakBuffered() > 0 {
				fmt.Fprintf(b, " buffered=%d", st.PeakBuffered())
			}
			b.WriteString(")")
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		ins.render(b, c, depth+1)
	}
}

// childInclusive sums the inclusive read deltas of the nearest instrumented
// descendants of n (unannotated intermediate nodes are transparent).
func (ins *Instrumentation) childInclusive(n *Node) storage.Snapshot {
	var sum storage.Snapshot
	for _, c := range n.Children {
		if st, ok := ins.Stats[c]; ok {
			sum = sum.Add(st.Reads())
		} else {
			sum = sum.Add(ins.childInclusive(c))
		}
	}
	return sum
}

// TotalExclusive sums the exclusive read deltas over every annotated node —
// by construction this equals the root's inclusive delta, i.e. the session
// stats delta of the execution (used by tests as an invariant check).
func (ins *Instrumentation) TotalExclusive() storage.Snapshot {
	var sum storage.Snapshot
	var walk func(n *Node)
	walk = func(n *Node) {
		if st, ok := ins.Stats[n]; ok {
			sum = sum.Add(st.Reads().Sub(ins.childInclusive(n)))
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ins.Root)
	return sum
}

// buildCtx carries per-execution wiring state (recursive CTE delta buffers
// and the instrumentation hook).
type buildCtx struct {
	deltas map[any]*[]exec.Row
	// instr, when set, wraps each annotated operator (keyed by its explain
	// node) as it is instantiated; nil for plain executions.
	instr func(n *Node, op exec.Operator) exec.Operator
	// part, when set, redirects the scan whose explain node is part.target
	// to a partition of a shared split: ParallelAggOp builds each worker's
	// input subtree through a buildCtx copy carrying its partition index.
	part *scanPart
}

// scanPart identifies one worker's slice of a partitioned scan.
type scanPart struct {
	split  *exec.ScanSplit
	index  int
	target *Node
}

// annotate pairs a freshly created explain node with the builder that
// instantiates its operator, so instrumented executions can attribute
// runtime statistics to the node. Call it with the node that describes
// exactly the operator the builder constructs.
func annotate(b opBuilder, n *Node) opBuilder {
	return func(bc *buildCtx) exec.Operator {
		op := b(bc)
		if bc.instr != nil {
			op = bc.instr(n, op)
		}
		return op
	}
}

// delta returns the per-execution delta buffer for a recursive CTE binding,
// creating it on first use.
func (bc *buildCtx) delta(key any) *[]exec.Row {
	if bc.deltas == nil {
		bc.deltas = map[any]*[]exec.Row{}
	}
	d, ok := bc.deltas[key]
	if !ok {
		d = new([]exec.Row)
		bc.deltas[key] = d
	}
	return d
}

// opBuilder instantiates an operator subtree for one execution.
type opBuilder func(bc *buildCtx) exec.Operator

// errf builds planner errors.
func errf(format string, args ...any) error {
	return fmt.Errorf("plan: %s", fmt.Sprintf(format, args...))
}

func litScalar(v sqltypes.Value) exec.Scalar { return exec.ConstScalar(v) }

// CompileScalar compiles an expression that references no table columns
// (variables, parameters, literals, function calls, scalar subqueries).
func CompileScalar(cat Catalog, opts Options, e ast.Expr) (exec.Scalar, error) {
	c := &compiler{cat: cat, opts: opts}
	return c.compileExpr(e, &scope{}, nil)
}

// CompileScalarSlots compiles an expression whose variable references are
// resolved at compile time to indexes into Ctx.VarSlots (the fast path used
// by compiled procedural blocks, i.e. Aggify-generated aggregates). Every
// variable in e must appear in slots.
func CompileScalarSlots(cat Catalog, opts Options, e ast.Expr, slots map[string]int) (exec.Scalar, error) {
	c := &compiler{cat: cat, opts: opts, slots: slots}
	return c.compileExpr(e, &scope{}, nil)
}

// CompileRowExpr compiles an expression against the columns of a single
// table (used for DML: UPDATE SET expressions and WHERE predicates).
func CompileRowExpr(cat Catalog, opts Options, e ast.Expr, tab *storage.Table) (exec.Scalar, error) {
	c := &compiler{cat: cat, opts: opts}
	sc := &scope{}
	for _, col := range tab.Schema.Columns {
		sc.add(tab.Name, col.Name, col.Type)
	}
	return c.compileExpr(e, sc, nil)
}
