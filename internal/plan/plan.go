// Package plan compiles query ASTs into executable physical operator trees.
// It contains the engine's rule-based optimizer: predicate placement,
// index-seek selection, join-order and join-algorithm choice, scalar-
// subquery apply, apply decorrelation (the rewrite that gives the paper's
// "Aggify+" configuration its set-oriented plans), and the paper's Eq. 6
// streaming-aggregate enforcement for order-sensitive custom aggregates.
package plan

import (
	"fmt"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Catalog is the planner's view of schema objects; the engine implements it.
type Catalog interface {
	// ResolveTable returns a base table, temp table, or table variable.
	ResolveTable(name string) (*storage.Table, error)
	// AggSpec returns the aggregate function spec for name, if any
	// (built-in or custom).
	AggSpec(name string) (*exec.AggSpec, bool)
	// ScalarFuncExists reports whether a scalar UDF with this name exists
	// (built-in scalar functions are handled by the planner itself).
	ScalarFuncExists(name string) bool
}

// Options control optimizer behaviour; the zero value is the default
// configuration used by the engine.
type Options struct {
	// DisableDecorrelation turns off the apply-decorrelation rewrite
	// (for the Aggify+ ablation).
	DisableDecorrelation bool
	// Parallelism > 1 allows parallel aggregation (via the aggregate Merge
	// contract) for order-insensitive aggregations over large inputs.
	Parallelism int
	// MaxRecursion caps recursive CTE iterations (0 = engine default).
	MaxRecursion int
}

// Plan is a compiled, reusable query plan. Build instantiates a fresh
// operator tree, so a Plan may be executed many times and reentrantly.
type Plan struct {
	// Columns are the output column names.
	Columns []string
	// Explain describes the chosen physical plan.
	Explain *Node

	build opBuilder
}

// Build instantiates the physical operator tree for one execution.
func (p *Plan) Build() exec.Operator {
	return p.build(&buildCtx{})
}

// Run builds and drains the plan.
func (p *Plan) Run(ctx *exec.Ctx) ([]exec.Row, error) {
	return exec.Drain(ctx, p.Build())
}

// Node is one node of the explain tree.
type Node struct {
	Op       string // operator name, e.g. "IndexSeek(partsupp.ps_partkey)"
	Children []*Node
}

// String renders the explain tree with indentation.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op)
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// Contains reports whether any node's Op contains the substring s.
func (n *Node) Contains(s string) bool {
	if strings.Contains(n.Op, s) {
		return true
	}
	for _, c := range n.Children {
		if c.Contains(s) {
			return true
		}
	}
	return false
}

func node(op string, children ...*Node) *Node { return &Node{Op: op, Children: children} }

// buildCtx carries per-execution wiring state (recursive CTE delta buffers).
type buildCtx struct {
	deltas map[any]*[]exec.Row
}

// delta returns the per-execution delta buffer for a recursive CTE binding,
// creating it on first use.
func (bc *buildCtx) delta(key any) *[]exec.Row {
	if bc.deltas == nil {
		bc.deltas = map[any]*[]exec.Row{}
	}
	d, ok := bc.deltas[key]
	if !ok {
		d = new([]exec.Row)
		bc.deltas[key] = d
	}
	return d
}

// opBuilder instantiates an operator subtree for one execution.
type opBuilder func(bc *buildCtx) exec.Operator

// errf builds planner errors.
func errf(format string, args ...any) error {
	return fmt.Errorf("plan: %s", fmt.Sprintf(format, args...))
}

func litScalar(v sqltypes.Value) exec.Scalar { return exec.ConstScalar(v) }

// CompileScalar compiles an expression that references no table columns
// (variables, parameters, literals, function calls, scalar subqueries).
func CompileScalar(cat Catalog, opts Options, e ast.Expr) (exec.Scalar, error) {
	c := &compiler{cat: cat, opts: opts}
	return c.compileExpr(e, &scope{}, nil)
}

// CompileScalarSlots compiles an expression whose variable references are
// resolved at compile time to indexes into Ctx.VarSlots (the fast path used
// by compiled procedural blocks, i.e. Aggify-generated aggregates). Every
// variable in e must appear in slots.
func CompileScalarSlots(cat Catalog, opts Options, e ast.Expr, slots map[string]int) (exec.Scalar, error) {
	c := &compiler{cat: cat, opts: opts, slots: slots}
	return c.compileExpr(e, &scope{}, nil)
}

// CompileRowExpr compiles an expression against the columns of a single
// table (used for DML: UPDATE SET expressions and WHERE predicates).
func CompileRowExpr(cat Catalog, opts Options, e ast.Expr, tab *storage.Table) (exec.Scalar, error) {
	c := &compiler{cat: cat, opts: opts}
	sc := &scope{}
	for _, col := range tab.Schema.Columns {
		sc.add(tab.Name, col.Name, col.Type)
	}
	return c.compileExpr(e, sc, nil)
}
