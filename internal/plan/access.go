// Cost-based passes: choose_access_path and reorder_joins.
//
// Both run once, after the local rewrite rules reach fixpoint (predicate
// placement and constant folding are final by then), and both only decide
// among physically different but semantically equivalent shapes:
//
//   - choose_access_path costs the access paths available to each base
//     scan — full scan, index equality seek, ordered-index range seek —
//     from table statistics and equi-depth histograms, and pins the
//     cheapest on the lScan as an accessHint the physical compiler obeys.
//     Cost formulas (N = live rows, NDV = distinct values, sel = histogram
//     range selectivity):
//
//     scan   N
//     eq     1 + N/NDV
//     range  log2(N) + 1 + sel*N
//
//     Ties prefer the equality seek (today's default), then range seek,
//     then scan, so enabling the rule without stats pressure reproduces
//     familiar plans.
//
//   - reorder_joins flattens maximal all-inner explicit join chains and
//     greedily re-joins them smallest-estimated-cardinality-first (staying
//     connected through equality conjuncts when possible). Inner joins
//     guarantee no row order, so the rule preserves the result multiset
//     but not row order — the one documented relaxation of the rewrite
//     pass's order-identity contract.
package plan

import (
	"fmt"
	"math"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// defaultSelectivity is the guess for predicates the histogram cannot
// estimate (non-literal bounds, unhistogrammed columns, opaque shapes).
const defaultSelectivity = 0.25

type accessKind int

const (
	accessScan accessKind = iota
	accessEq
	accessRange
)

// accessHint pins the physical access path for one base-table scan.
type accessHint struct {
	kind accessKind
	col  string
	cost float64
	// Equality seek: key expression and the conjunct it consumes.
	key    ast.Expr
	eqConj ast.Expr
	// Range seek: bound expressions (nil = unbounded), strictness, and
	// the conjuncts the bounds consume.
	lo, hi             ast.Expr
	loStrict, hiStrict bool
	loConj, hiConj     ast.Expr
}

// costSuffix renders the EXPLAIN cost annotation.
func costSuffix(c float64) string { return fmt.Sprintf(" cost=%.1f", c) }

// --- choose_access_path ---

// choosePass walks the IR and, for every block whose FROM is reachable
// below its WHERE filter chain, decides an access path per base scan.
func (rw *rewriter) choosePass(n lNode) lNode {
	n = mapLogicalChildren(n, rw.choosePass)
	switch t := n.(type) {
	case *lProject:
		rw.chooseBlock(t.In)
	case *lAggregate:
		rw.chooseBlock(t.In)
	}
	return n
}

// chooseBlock gathers the filter chain above a FROM node and decides
// access paths for the scans it covers. A chain terminating anywhere else
// (e.g. HAVING filters above an aggregate) is left alone.
func (rw *rewriter) chooseBlock(n lNode) {
	var preds []ast.Expr
	for {
		f, ok := n.(*lFilter)
		if !ok {
			break
		}
		preds = append(preds, f.Pred)
		n = f.In
	}
	switch n.(type) {
	case *lScan, *lCross, *lJoin:
	default:
		return
	}
	var units []unitRef
	rw.collectUnits(n, func(lNode) {}, false, false, false, &units)
	perUnit := resolveConjuncts(units, preds)
	for i, u := range units {
		scan, ok := u.node.(*lScan)
		if !ok || len(perUnit[i]) == 0 {
			continue
		}
		rw.decideAccess(scan, perUnit[i])
	}
}

// resolveConjuncts assigns each predicate to the single unit it references,
// mirroring compileFrom's conjunct classification. Predicates that span
// units, embed subqueries, or resolve ambiguously are skipped (they stay
// wherever compilation puts them).
func resolveConjuncts(units []unitRef, preds []ast.Expr) map[int][]ast.Expr {
	out := map[int][]ast.Expr{}
	for _, pred := range preds {
		if ast.HasSubquery(pred) {
			continue
		}
		refs := ast.ColRefs(pred)
		if len(refs) == 0 {
			continue
		}
		target := -1
		ok := true
		for _, cr := range refs {
			idx := -1
			for i, u := range units {
				var match bool
				if cr.Table != "" {
					if cr.Table != u.binding {
						continue
					}
					match = u.known && containsStr(u.cols, cr.Name)
				} else {
					if !u.known {
						ok = false
						break
					}
					match = containsStr(u.cols, cr.Name)
				}
				if match {
					if idx != -1 {
						ok = false
						break
					}
					idx = i
				}
			}
			if !ok || idx == -1 {
				ok = false
				break
			}
			if target == -1 {
				target = idx
			} else if target != idx {
				ok = false
				break
			}
		}
		if ok && target >= 0 {
			out[target] = append(out[target], pred)
		}
	}
	return out
}

// decideAccess costs the candidate access paths for one scan and pins the
// cheapest. Fires only when there is an actual choice (at least one seek
// candidate); index-less scans compile exactly as before.
func (rw *rewriter) decideAccess(scan *lScan, conjs []ast.Expr) {
	if lateBound(scan.Name) {
		return
	}
	tab, err := rw.c.cat.ResolveTable(scan.Name)
	if err != nil {
		return
	}
	st := tab.Statistics()
	n := float64(st.Rows)
	if n < 1 {
		n = 1
	}

	// Best equality-seek candidate: lowest 1 + N/NDV over indexed columns.
	var eqBest *accessHint
	for _, cj := range conjs {
		col, key, ok := eqColKey(cj, tab)
		if !ok || tab.Index(col) == nil {
			continue
		}
		ndv := float64(st.DistinctOf(tab.Schema, col))
		if ndv < 1 {
			ndv = 1
		}
		cost := 1 + n/ndv
		if eqBest == nil || cost < eqBest.cost {
			eqBest = &accessHint{kind: accessEq, col: col, cost: cost, key: key, eqConj: cj}
		}
	}

	// Best range-seek candidate over ordered-indexed columns.
	var rangeBest *accessHint
	for _, d := range tab.IndexDefs() {
		if !d.Ordered {
			continue
		}
		h := rangeBounds(conjs, d.Column, tab)
		if h == nil {
			continue
		}
		sel := rangeSelectivity(st, d.Column, h)
		h.cost = math.Log2(n) + 1 + sel*n
		if rangeBest == nil || h.cost < rangeBest.cost {
			rangeBest = h
		}
	}

	if eqBest == nil && rangeBest == nil {
		return
	}
	chosen := &accessHint{kind: accessScan, cost: n}
	if rangeBest != nil && rangeBest.cost < chosen.cost {
		chosen = rangeBest
	}
	if eqBest != nil && eqBest.cost <= chosen.cost {
		chosen = eqBest
	}
	scan.hint = chosen
	rw.fire(RuleChooseAccessPath)
}

// eqColKey matches `col = key` / `key = col` where col is a bare column of
// tab and key contains no column references (literals, variables,
// parameters — evaluable before the scan opens).
func eqColKey(e ast.Expr, tab *storage.Table) (string, ast.Expr, bool) {
	b, ok := e.(*ast.BinExpr)
	if !ok || b.Op != sqltypes.OpEq {
		return "", nil, false
	}
	for _, flip := range []struct{ col, key ast.Expr }{{b.L, b.R}, {b.R, b.L}} {
		cr, isCol := flip.col.(*ast.ColRef)
		if !isCol || tab.Schema.Ordinal(cr.Name) < 0 || len(ast.ColRefs(flip.key)) != 0 {
			continue
		}
		return cr.Name, flip.key, true
	}
	return "", nil, false
}

// rangeBounds combines comparison conjuncts over col into one [lo, hi]
// range hint (first conjunct per side wins); nil when no bound applies.
func rangeBounds(conjs []ast.Expr, col string, tab *storage.Table) *accessHint {
	h := &accessHint{kind: accessRange, col: col}
	for _, cj := range conjs {
		b, ok := cj.(*ast.BinExpr)
		if !ok {
			continue
		}
		var cmp sqltypes.BinaryOp
		var bound ast.Expr
		switch {
		case isColSide(b.L, col, tab) && len(ast.ColRefs(b.R)) == 0:
			cmp, bound = b.Op, b.R
		case isColSide(b.R, col, tab) && len(ast.ColRefs(b.L)) == 0:
			// Flip: key OP col ≡ col OP' key.
			switch b.Op {
			case sqltypes.OpLt:
				cmp = sqltypes.OpGt
			case sqltypes.OpLe:
				cmp = sqltypes.OpGe
			case sqltypes.OpGt:
				cmp = sqltypes.OpLt
			case sqltypes.OpGe:
				cmp = sqltypes.OpLe
			default:
				continue
			}
			bound = b.L
		default:
			continue
		}
		switch cmp {
		case sqltypes.OpLt:
			if h.hi == nil {
				h.hi, h.hiStrict, h.hiConj = bound, true, cj
			}
		case sqltypes.OpLe:
			if h.hi == nil {
				h.hi, h.hiStrict, h.hiConj = bound, false, cj
			}
		case sqltypes.OpGt:
			if h.lo == nil {
				h.lo, h.loStrict, h.loConj = bound, true, cj
			}
		case sqltypes.OpGe:
			if h.lo == nil {
				h.lo, h.loStrict, h.loConj = bound, false, cj
			}
		}
	}
	if h.lo == nil && h.hi == nil {
		return nil
	}
	return h
}

func isColSide(e ast.Expr, col string, tab *storage.Table) bool {
	cr, ok := e.(*ast.ColRef)
	return ok && strings.EqualFold(cr.Name, col) && tab.Schema.Ordinal(cr.Name) >= 0
}

// rangeSelectivity estimates the selected fraction from the column's
// histogram when the bounds are literals; defaultSelectivity otherwise.
func rangeSelectivity(st storage.TableStatistics, col string, h *accessHint) float64 {
	hist, ok := st.Histograms[col]
	if !ok {
		hist, ok = st.Histograms[strings.ToLower(col)]
	}
	if !ok {
		return defaultSelectivity
	}
	lo, hi := sqltypes.Null, sqltypes.Null
	if h.lo != nil {
		lit, isLit := h.lo.(*ast.Literal)
		if !isLit {
			return defaultSelectivity
		}
		lo = lit.Val
	}
	if h.hi != nil {
		lit, isLit := h.hi.(*ast.Literal)
		if !isLit {
			return defaultSelectivity
		}
		hi = lit.Val
	}
	return hist.SelectivityRange(lo, hi, h.loStrict, h.hiStrict)
}

// --- reorder_joins ---

func (rw *rewriter) reorderPass(n lNode) lNode {
	if j, ok := n.(*lJoin); ok {
		return rw.reorderChain(j)
	}
	return mapLogicalChildren(n, rw.reorderPass)
}

// reorderChain flattens a maximal all-inner join chain rooted at j and
// greedily re-joins it smallest-estimated-leaf-first. Non-inner joins pass
// through untouched (their subtrees still recurse).
func (rw *rewriter) reorderChain(j *lJoin) lNode {
	if j.Kind != ast.JoinInner {
		j.L = rw.reorderPass(j.L)
		j.R = rw.reorderPass(j.R)
		return j
	}
	var leaves []lNode
	var conjs []ast.Expr
	flattenInner(j, &leaves, &conjs)
	for i := range leaves {
		leaves[i] = rw.reorderPass(leaves[i]) // derived bodies may hold chains
	}

	// Feasibility: every leaf must expose known columns under a unique
	// binding, every conjunct must be subquery-free, and every leaf must be
	// estimable. Anything else keeps the user's order.
	infos := make([]unitRef, len(leaves))
	bindings := map[string]bool{}
	for i, leaf := range leaves {
		var u unitRef
		u.binding, u.cols, u.known = rw.unitInfo(leaf)
		if !u.known || u.binding == "" || bindings[u.binding] {
			return j
		}
		bindings[u.binding] = true
		infos[i] = u
	}
	est := make([]float64, len(leaves))
	for i, leaf := range leaves {
		e, ok := rw.estimateLeaf(leaf)
		if !ok {
			return j
		}
		est[i] = e
	}
	cinfos := make([]conjInfo, len(conjs))
	for ci, cj := range conjs {
		if ast.HasSubquery(cj) {
			return j
		}
		refs := map[int]bool{}
		top := false
		for _, cr := range ast.ColRefs(cj) {
			idx := -1
			if cr.Table != "" {
				for i, inf := range infos {
					if inf.binding == cr.Table && containsStr(inf.cols, cr.Name) {
						idx = i
						break
					}
				}
			} else {
				for i, inf := range infos {
					if containsStr(inf.cols, cr.Name) {
						if idx != -1 {
							return j // ambiguous unqualified reference
						}
						idx = i
					}
				}
			}
			if idx == -1 {
				top = true
			} else {
				refs[idx] = true
			}
		}
		cinfos[ci] = conjInfo{refs: refs, top: top || len(refs) == 0}
	}

	// Greedy order: start from the smallest leaf, then repeatedly take the
	// smallest leaf connected to the placed set through a conjunct; fall
	// back to the smallest remaining leaf when nothing connects.
	placed := make([]bool, len(leaves))
	order := make([]int, 0, len(leaves))
	for len(order) < len(leaves) {
		pick := -1
		for i := range leaves {
			if placed[i] {
				continue
			}
			if len(order) > 0 && !connected(i, placed, cinfos) {
				continue
			}
			if pick == -1 || est[i] < est[pick] {
				pick = i
			}
		}
		if pick == -1 {
			for i := range leaves {
				if !placed[i] && (pick == -1 || est[i] < est[pick]) {
					pick = i
				}
			}
		}
		placed[pick] = true
		order = append(order, pick)
	}
	same := true
	for i, p := range order {
		if p != i {
			same = false
			break
		}
	}
	if same {
		return j
	}

	// Rebuild left-deep, attaching each conjunct to the earliest join where
	// all its referenced leaves are available; top-anchored conjuncts land
	// on the final join.
	usedConj := make([]bool, len(conjs))
	inSet := map[int]bool{order[0]: true}
	cur := leaves[order[0]]
	for k := 1; k < len(order); k++ {
		inSet[order[k]] = true
		last := k == len(order)-1
		var on ast.Expr
		for ci, cj := range conjs {
			if usedConj[ci] {
				continue
			}
			info := cinfos[ci]
			ready := !info.top
			for r := range info.refs {
				if !inSet[r] {
					ready = false
					break
				}
			}
			if ready || last {
				usedConj[ci] = true
				on = ast.And(on, cj)
			}
		}
		cur = &lJoin{
			Kind: ast.JoinInner, L: cur, R: leaves[order[k]], On: on,
			mark: ruleName(RuleReorderJoins), cost: est[order[k]],
		}
	}
	rw.fire(RuleReorderJoins)
	return cur
}

// conjInfo classifies one flattened join conjunct: the leaves it
// references, and whether an unresolved (outer) reference anchors it to
// the final join.
type conjInfo struct {
	refs map[int]bool
	top  bool
}

// connected reports whether leaf i shares a conjunct with the placed set.
func connected(i int, placed []bool, cinfos []conjInfo) bool {
	for _, ci := range cinfos {
		if ci.top || !ci.refs[i] {
			continue
		}
		for r := range ci.refs {
			if r != i && placed[r] {
				return true
			}
		}
	}
	return false
}

// flattenInner expands nested inner joins into leaves + conjuncts.
func flattenInner(n lNode, leaves *[]lNode, conjs *[]ast.Expr) {
	if j, ok := n.(*lJoin); ok && j.Kind == ast.JoinInner {
		flattenInner(j.L, leaves, conjs)
		flattenInner(j.R, leaves, conjs)
		*conjs = append(*conjs, splitConjuncts(j.On)...)
		return
	}
	*leaves = append(*leaves, n)
}

// estimateLeaf estimates a join leaf's output cardinality: base-table rows
// for a scan, rows scaled by per-predicate selectivity for a filtered
// derived table over one scan. Anything else is inestimable.
func (rw *rewriter) estimateLeaf(n lNode) (float64, bool) {
	switch t := n.(type) {
	case *lScan:
		tab, ok := rw.leafTable(t)
		if !ok {
			return 0, false
		}
		return math.Max(float64(tab.Statistics().Rows), 1), true
	case *lDerived:
		inner := t.Child
		for {
			switch w := inner.(type) {
			case *lWith:
				inner = w.In
			case *lSort:
				inner = w.In
			case *lApply:
				inner = w.In
			case *lProject:
				if w.Distinct {
					return 0, false
				}
				var preds []ast.Expr
				c := w.In
				for {
					f, ok := c.(*lFilter)
					if !ok {
						break
					}
					preds = append(preds, f.Pred)
					c = f.In
				}
				s, ok := c.(*lScan)
				if !ok {
					return 0, false
				}
				tab, ok := rw.leafTable(s)
				if !ok {
					return 0, false
				}
				st := tab.Statistics()
				rows := math.Max(float64(st.Rows), 1)
				for _, p := range preds {
					rows *= predSelectivity(p, tab, st)
				}
				return math.Max(rows, 0.1), true
			default:
				return 0, false
			}
		}
	}
	return 0, false
}

func (rw *rewriter) leafTable(s *lScan) (*storage.Table, bool) {
	if lateBound(s.Name) {
		return nil, false
	}
	tab, err := rw.c.cat.ResolveTable(s.Name)
	if err != nil {
		return nil, false
	}
	return tab, true
}

// predSelectivity estimates one predicate's selectivity: 1/NDV for an
// equality on a known column, histogram range fraction for a literal
// comparison, defaultSelectivity otherwise.
func predSelectivity(p ast.Expr, tab *storage.Table, st storage.TableStatistics) float64 {
	b, ok := p.(*ast.BinExpr)
	if !ok {
		return defaultSelectivity
	}
	if b.Op == sqltypes.OpEq {
		if col, _, ok := eqColKey(p, tab); ok {
			ndv := float64(st.DistinctOf(tab.Schema, col))
			if ndv < 1 {
				ndv = 1
			}
			return clampSel(1 / ndv)
		}
		return defaultSelectivity
	}
	for _, side := range []struct{ col, key ast.Expr }{{b.L, b.R}, {b.R, b.L}} {
		cr, isCol := side.col.(*ast.ColRef)
		if !isCol || tab.Schema.Ordinal(cr.Name) < 0 {
			continue
		}
		if h := rangeBounds([]ast.Expr{p}, cr.Name, tab); h != nil {
			return clampSel(rangeSelectivity(st, cr.Name, h))
		}
	}
	return defaultSelectivity
}

func clampSel(s float64) float64 {
	if s < 1e-6 {
		return 1e-6
	}
	if s > 1 {
		return 1
	}
	return s
}
