package plan

import (
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

func TestSplitConjuncts(t *testing.T) {
	a := ast.Eq(ast.Col("a"), ast.IntLit(1))
	b := ast.Eq(ast.Col("b"), ast.IntLit(2))
	c := ast.Bin(sqltypes.OpGt, ast.Col("c"), ast.IntLit(3))
	e := ast.And(a, b, c)
	parts := splitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0] != ast.Expr(a) || parts[2] != ast.Expr(c) {
		t.Fatal("conjunct identity lost")
	}
	if got := splitConjuncts(nil); got != nil {
		t.Fatal("nil predicate must split to nothing")
	}
	// OR is not split.
	or := ast.Bin(sqltypes.OpOr, a, b)
	if got := splitConjuncts(or); len(got) != 1 {
		t.Fatalf("OR split = %d", len(got))
	}
}

func TestEqSides(t *testing.T) {
	l, r, ok := eqSides(ast.Eq(ast.Col("x"), ast.IntLit(1)))
	if !ok || l.String() != "x" || r.String() != "1" {
		t.Fatalf("eqSides = %v %v %v", l, r, ok)
	}
	if _, _, ok := eqSides(ast.Bin(sqltypes.OpLt, ast.Col("x"), ast.IntLit(1))); ok {
		t.Fatal("inequality must not split")
	}
	if _, _, ok := eqSides(ast.Col("x")); ok {
		t.Fatal("non-binary must not split")
	}
}

func TestLateBound(t *testing.T) {
	cases := map[string]bool{"@t": true, "#tmp": true, "orders": false, "": false}
	for name, want := range cases {
		if lateBound(name) != want {
			t.Errorf("lateBound(%q) = %v", name, !want)
		}
	}
}

func TestExplainNode(t *testing.T) {
	n := node("HashAgg", node("Filter", node("Scan(t)")))
	out := n.String()
	for _, want := range []string{"HashAgg", "  Filter", "    Scan(t)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !n.Contains("Scan") || n.Contains("IndexSeek") {
		t.Fatal("Contains broken")
	}
}

func TestScopeResolution(t *testing.T) {
	outer := &scope{}
	outer.add("t", "a", sqltypes.Int)
	inner := &scope{parent: outer}
	inner.add("u", "b", sqltypes.Int)

	res, err := inner.resolve(ast.Col("b"))
	if err != nil || res.levelsUp != 0 || res.ordinal != 0 {
		t.Fatalf("local resolve = %+v, %v", res, err)
	}
	res, err = inner.resolve(ast.Col("a"))
	if err != nil || res.levelsUp != 1 {
		t.Fatalf("outer resolve = %+v, %v", res, err)
	}
	if _, err := inner.resolve(ast.Col("zz")); err == nil {
		t.Fatal("unknown column must error")
	}
	// Ambiguity within one scope.
	amb := &scope{}
	amb.add("t1", "k", sqltypes.Int)
	amb.add("t2", "k", sqltypes.Int)
	if _, err := amb.resolve(ast.Col("k")); err == nil {
		t.Fatal("ambiguous unqualified reference must error")
	}
	if res, err := amb.resolve(ast.QCol("t2", "k")); err != nil || res.ordinal != 1 {
		t.Fatalf("qualified resolve = %+v, %v", res, err)
	}
}

func TestIsBuiltinScalarFunc(t *testing.T) {
	if !IsBuiltinScalarFunc("COALESCE") || !IsBuiltinScalarFunc("tuple_get") {
		t.Fatal("builtin detection broken")
	}
	if IsBuiltinScalarFunc("mincostsupp") {
		t.Fatal("UDF misdetected as builtin")
	}
}
