// Logical-plan IR: a small relational algebra sitting between the AST and
// physical compilation. Compile builds it from the (already decorrelated)
// SELECT, the rewrite pass (rewrite.go) normalizes it, and lowering turns it
// back into a canonical AST the existing physical compiler consumes — so
// every physical decision (index selection, join algorithm, parallel
// eligibility) keeps working on the tree it already understands.
//
// The IR is deliberately lossless and conservative: buildLogical refuses any
// shape it cannot round-trip exactly (ok=false), in which case the rewrite
// pass is skipped and the query compiles from the original AST. Blocks have
// a fixed spine, innermost to outermost:
//
//	From → Filter* (WHERE) → [Aggregate → Filter* (HAVING)] → Project
//	     → [Apply] → [Sort] → [Top] → [With]
//
// where From is a Scan, CTERef, Derived, Join tree, or Cross of those.
// UNION ALL chains become a SetOp of per-branch spines under the head's
// Sort/Top/With wrappers. CTE bodies are carried opaquely (they see only
// outer scopes, so block-local rules cannot touch them safely).
package plan

import (
	"fmt"

	"aggify/internal/ast"
)

// lNode is one node of the logical IR.
type lNode interface{ lnode() }

// --- FROM-position nodes ---

// lScan reads a base table, table variable, or temp table. hint, when set
// by choose_access_path, pins the physical access path the compiler must
// use for this scan.
type lScan struct {
	Name  string
	Alias string
	hint  *accessHint
}

// lCTERef reads a common table expression visible in the current scope.
type lCTERef struct {
	Name  string
	Alias string
}

// lDerived is a derived table: (SELECT ...) alias.
type lDerived struct {
	Child lNode
	Alias string
	mark  string // fired-rule annotation for EXPLAIN, "" when untouched
}

// lJoin is an explicit ANSI join. mark/cost annotate a join reorder_joins
// rebuilt (mark is "" when untouched; cost is the estimated driving-leaf
// cardinality shown in EXPLAIN).
type lJoin struct {
	Kind ast.JoinKind
	L, R lNode
	On   ast.Expr
	mark string
	cost float64
}

// lCross is a comma-joined FROM list (len 0: no FROM at all).
type lCross struct {
	Units []lNode
}

// --- spine nodes ---

// lFilter applies one conjunct. WHERE conjuncts stack directly above the
// From construct; HAVING conjuncts stack above the lAggregate.
type lFilter struct {
	In   lNode
	Pred ast.Expr
	mark string
}

// lAggregate groups and aggregates; the aggregate calls themselves live in
// the enclosing lProject's items (as in the AST).
type lAggregate struct {
	In      lNode
	GroupBy []ast.Expr
}

// lProject is the projection list of one query block.
type lProject struct {
	In       lNode
	Items    []ast.SelectItem
	Distinct bool
	// OrderEnforced carries the Aggify Eq. 6 flag of the source block so
	// lowering restores it verbatim.
	OrderEnforced bool
}

// lApply marks a block whose projection evaluates embedded subqueries
// (correlated or not): the physical compiler runs them per row, so rules
// must not change how many rows reach the projection... which none of the
// current rules do above a Project; the node mostly documents the shape.
type lApply struct {
	In lNode
}

// lSort is an ORDER BY.
type lSort struct {
	In   lNode
	Keys []ast.OrderItem
}

// lTop is a TOP n row limit.
type lTop struct {
	In lNode
	N  ast.Expr
}

// lWith scopes CTE definitions (bodies carried opaquely).
type lWith struct {
	In   lNode
	Defs []ast.CTE
}

// lSetOp is a UNION ALL chain. origs keeps each branch's source Select so
// lowering can restore fields the physical compiler ignores on non-head
// branches (their own With/OrderBy/Top) without the IR modeling them.
type lSetOp struct {
	Branches []lNode
	origs    []*ast.Select
}

func (*lScan) lnode()      {}
func (*lCTERef) lnode()    {}
func (*lDerived) lnode()   {}
func (*lJoin) lnode()      {}
func (*lCross) lnode()     {}
func (*lFilter) lnode()    {}
func (*lAggregate) lnode() {}
func (*lProject) lnode()   {}
func (*lApply) lnode()     {}
func (*lSort) lnode()      {}
func (*lTop) lnode()       {}
func (*lWith) lnode()      {}
func (*lSetOp) lnode()     {}

// buildLogical turns a SELECT into the IR, or reports ok=false for any shape
// that would not round-trip exactly (the caller then skips the rewrite pass).
func (c *compiler) buildLogical(q *ast.Select) (lNode, bool) {
	return c.buildLogicalSelect(q, nil)
}

// buildLogicalSelect builds the wrapper stack + block spine (or SetOp of
// spines) for one SELECT. cteScope lists CTE names visible at this point so
// TableRefs classify as lCTERef vs lScan the same way the compiler's cteEnv
// will.
func (c *compiler) buildLogicalSelect(q *ast.Select, cteScope []string) (lNode, bool) {
	scope := cteScope
	if len(q.With) > 0 {
		scope = make([]string, 0, len(cteScope)+len(q.With))
		scope = append(scope, cteScope...)
		for _, cte := range q.With {
			scope = append(scope, cte.Name)
		}
	}
	var n lNode
	if q.Union == nil {
		var ok bool
		n, ok = c.buildLogicalCore(q, q.OrderBy, scope)
		if !ok {
			return nil, false
		}
	} else {
		set := &lSetOp{}
		for b := q; b != nil; b = b.Union {
			// Non-head branches compile with nil ORDER BY (compileSelect
			// applies only the head's), matching compileCore's inputs.
			var orderBy []ast.OrderItem
			if b == q {
				orderBy = nil // head's ORDER BY resolves against union output
			}
			bn, ok := c.buildLogicalCore(b, orderBy, scope)
			if !ok {
				return nil, false
			}
			set.Branches = append(set.Branches, bn)
			set.origs = append(set.origs, b)
		}
		n = set
	}
	if len(q.OrderBy) > 0 {
		n = &lSort{In: n, Keys: q.OrderBy}
	}
	if q.Top != nil {
		n = &lTop{In: n, N: q.Top}
	}
	if len(q.With) > 0 {
		n = &lWith{In: n, Defs: q.With}
	}
	return n, true
}

// buildLogicalCore builds one query block's spine: From → WHERE filters →
// aggregate + HAVING filters → Project [→ Apply]. orderBy is passed only for
// aggregate detection (ORDER BY sum(x) forces aggregation), mirroring
// compileCore.
func (c *compiler) buildLogicalCore(q *ast.Select, orderBy []ast.OrderItem, cteScope []string) (lNode, bool) {
	n, ok := c.buildLogicalFrom(q.From, cteScope)
	if !ok {
		return nil, false
	}
	for _, cj := range splitConjuncts(q.Where) {
		n = &lFilter{In: n, Pred: cj}
	}

	var aggs []aggCall
	seen := map[string]bool{}
	for _, it := range q.Items {
		if it.Star {
			continue
		}
		if err := c.findAggCalls(it.Expr, &aggs, seen); err != nil {
			return nil, false // nested aggregates: let compileCore report it
		}
	}
	if err := c.findAggCalls(q.Having, &aggs, seen); err != nil {
		return nil, false
	}
	for _, o := range orderBy {
		if err := c.findAggCalls(o.Expr, &aggs, seen); err != nil {
			return nil, false
		}
	}
	if len(aggs) > 0 || len(q.GroupBy) > 0 {
		n = &lAggregate{In: n, GroupBy: q.GroupBy}
		for _, cj := range splitConjuncts(q.Having) {
			n = &lFilter{In: n, Pred: cj}
		}
	} else if q.Having != nil {
		return nil, false // HAVING without aggregation is a compile error
	}

	p := &lProject{In: n, Items: q.Items, Distinct: q.Distinct, OrderEnforced: q.OrderEnforced}
	hasSub := false
	for _, it := range q.Items {
		if !it.Star && ast.HasSubquery(it.Expr) {
			hasSub = true
			break
		}
	}
	if hasSub {
		return &lApply{In: p}, true
	}
	return p, true
}

func (c *compiler) buildLogicalFrom(items []ast.TableExpr, cteScope []string) (lNode, bool) {
	if len(items) == 1 {
		return c.buildLogicalUnit(items[0], cteScope)
	}
	cross := &lCross{Units: make([]lNode, 0, len(items))}
	for _, te := range items {
		u, ok := c.buildLogicalUnit(te, cteScope)
		if !ok {
			return nil, false
		}
		cross.Units = append(cross.Units, u)
	}
	return cross, true
}

func (c *compiler) buildLogicalUnit(te ast.TableExpr, cteScope []string) (lNode, bool) {
	switch t := te.(type) {
	case *ast.TableRef:
		for _, name := range cteScope {
			if name == t.Name {
				return &lCTERef{Name: t.Name, Alias: t.Alias}, true
			}
		}
		return &lScan{Name: t.Name, Alias: t.Alias}, true
	case *ast.SubqueryRef:
		child, ok := c.buildLogicalSelect(t.Query, cteScope)
		if !ok {
			return nil, false
		}
		return &lDerived{Child: child, Alias: t.Alias}, true
	case *ast.Join:
		l, ok := c.buildLogicalUnit(t.L, cteScope)
		if !ok {
			return nil, false
		}
		r, ok := c.buildLogicalUnit(t.R, cteScope)
		if !ok {
			return nil, false
		}
		return &lJoin{Kind: t.Kind, L: l, R: r, On: t.On}, true
	}
	return nil, false
}

// lowerLogical turns a rewritten IR back into the canonical AST the physical
// compiler consumes, recording fired-rule marks on the compiler for EXPLAIN
// annotation. ok=false means the tree drifted from the canonical spine (a
// rule bug); the caller falls back to the original AST.
func (c *compiler) lowerLogical(n lNode) (*ast.Select, bool) {
	return c.lowerSelect(n)
}

func (c *compiler) lowerSelect(n lNode) (*ast.Select, bool) {
	var with []ast.CTE
	var top ast.Expr
	var orderBy []ast.OrderItem
	if w, ok := n.(*lWith); ok {
		with = w.Defs
		n = w.In
	}
	if t, ok := n.(*lTop); ok {
		top = t.N
		n = t.In
	}
	if s, ok := n.(*lSort); ok {
		orderBy = s.Keys
		n = s.In
	}

	var head *ast.Select
	if set, ok := n.(*lSetOp); ok {
		var prev *ast.Select
		for i, b := range set.Branches {
			bs, ok := c.lowerBlock(b)
			if !ok {
				return nil, false
			}
			if i > 0 {
				// Inert on non-head branches (never compiled), preserved so
				// the round-trip is lossless.
				orig := set.origs[i]
				bs.With = orig.With
				bs.OrderBy = orig.OrderBy
				bs.Top = orig.Top
				prev.Union = bs
			} else {
				head = bs
			}
			prev = bs
		}
	} else {
		var ok bool
		head, ok = c.lowerBlock(n)
		if !ok {
			return nil, false
		}
	}
	head.With = with
	head.Top = top
	head.OrderBy = orderBy
	return head, true
}

// lowerBlock lowers one block spine to a Select (without the wrapper fields,
// which lowerSelect owns).
func (c *compiler) lowerBlock(n lNode) (*ast.Select, bool) {
	if a, ok := n.(*lApply); ok {
		n = a.In
	}
	p, ok := n.(*lProject)
	if !ok {
		return nil, false
	}
	q := &ast.Select{Items: p.Items, Distinct: p.Distinct, OrderEnforced: p.OrderEnforced}
	n = p.In

	preds, n := c.lowerFilters(n)
	if agg, ok := n.(*lAggregate); ok {
		q.Having = andReversed(preds)
		q.GroupBy = agg.GroupBy
		preds, n = c.lowerFilters(agg.In)
	}
	q.Where = andReversed(preds)

	from, ok := c.lowerFrom(n)
	if !ok {
		return nil, false
	}
	q.From = from
	return q, true
}

// lowerFilters collects a run of lFilter nodes top-down (outermost conjunct
// first) and records their rewrite marks.
func (c *compiler) lowerFilters(n lNode) ([]ast.Expr, lNode) {
	var preds []ast.Expr
	for {
		f, ok := n.(*lFilter)
		if !ok {
			return preds, n
		}
		if f.mark != "" {
			c.markExpr(f.Pred, f.mark)
		}
		preds = append(preds, f.Pred)
		n = f.In
	}
}

// andReversed rebuilds a conjunction from filters collected top-down, so the
// innermost (first-built) conjunct comes first — byte-identical to the
// original WHERE for an untouched chain.
func andReversed(preds []ast.Expr) ast.Expr {
	var out ast.Expr
	for i := len(preds) - 1; i >= 0; i-- {
		out = ast.And(out, preds[i])
	}
	return out
}

func (c *compiler) lowerFrom(n lNode) ([]ast.TableExpr, bool) {
	if cross, ok := n.(*lCross); ok {
		out := make([]ast.TableExpr, 0, len(cross.Units))
		for _, u := range cross.Units {
			te, ok := c.lowerUnit(u)
			if !ok {
				return nil, false
			}
			out = append(out, te)
		}
		return out, true
	}
	te, ok := c.lowerUnit(n)
	if !ok {
		return nil, false
	}
	return []ast.TableExpr{te}, true
}

func (c *compiler) lowerUnit(n lNode) (ast.TableExpr, bool) {
	switch t := n.(type) {
	case *lScan:
		tr := &ast.TableRef{Name: t.Name, Alias: t.Alias}
		if t.hint != nil {
			if c.accessHints == nil {
				c.accessHints = map[*ast.TableRef]*accessHint{}
			}
			c.accessHints[tr] = t.hint
		}
		return tr, true
	case *lCTERef:
		return &ast.TableRef{Name: t.Name, Alias: t.Alias}, true
	case *lDerived:
		sel, ok := c.lowerSelect(t.Child)
		if !ok {
			return nil, false
		}
		if t.mark != "" {
			c.markSelect(sel, t.mark)
		}
		return &ast.SubqueryRef{Query: sel, Alias: t.Alias}, true
	case *lJoin:
		l, ok := c.lowerUnit(t.L)
		if !ok {
			return nil, false
		}
		r, ok := c.lowerUnit(t.R)
		if !ok {
			return nil, false
		}
		j := &ast.Join{Kind: t.Kind, L: l, R: r, On: t.On}
		if t.mark != "" {
			if c.joinMarks == nil {
				c.joinMarks = map[*ast.Join]string{}
			}
			c.joinMarks[j] = c.rwSuffix(t.mark) + costSuffix(t.cost)
		}
		return j, true
	}
	return nil, false
}

// mapLogicalChildren rewrites every direct child of n through f, in place
// (the IR owns a private AST clone), and returns n.
func mapLogicalChildren(n lNode, f func(lNode) lNode) lNode {
	switch t := n.(type) {
	case *lFilter:
		t.In = f(t.In)
	case *lAggregate:
		t.In = f(t.In)
	case *lProject:
		t.In = f(t.In)
	case *lApply:
		t.In = f(t.In)
	case *lSort:
		t.In = f(t.In)
	case *lTop:
		t.In = f(t.In)
	case *lWith:
		t.In = f(t.In)
	case *lDerived:
		t.Child = f(t.Child)
	case *lJoin:
		t.L = f(t.L)
		t.R = f(t.R)
	case *lCross:
		for i := range t.Units {
			t.Units[i] = f(t.Units[i])
		}
	case *lSetOp:
		for i := range t.Branches {
			t.Branches[i] = f(t.Branches[i])
		}
	}
	return n
}

// blockProject descends a derived table's child through its wrapper stack to
// the block projection; nil for SetOps and malformed spines. Callers use it
// to read a derived table's output items.
func blockProject(child lNode) *lProject {
	for {
		switch t := child.(type) {
		case *lWith:
			child = t.In
		case *lTop:
			child = t.In
		case *lSort:
			child = t.In
		case *lApply:
			child = t.In
		case *lProject:
			return t
		default:
			return nil
		}
	}
}

// itemOutName is the output column name of a projection item, mirroring
// selectOutputNames for star-free item lists.
func itemOutName(it ast.SelectItem, idx int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*ast.ColRef); ok {
		return cr.Name
	}
	return fmt.Sprintf("col%d", idx+1)
}
