package bench

import (
	"testing"
	"time"

	"aggify/internal/tpch"
)

// TestPaperShape is the headline regression test: on the per-invocation
// cursor-loop queries, Aggify must beat the original by a wide margin and
// Aggify+ must also win (the Figure 9(a) shape). Factors are asserted
// loosely (>2x) to stay robust to machine noise; EXPERIMENTS.md records the
// measured medians.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs seconds of benchmarks")
	}
	env, err := LoadTPCH(0.005)
	if err != nil {
		t.Fatal(err)
	}
	best := func(q *tpch.WorkloadQuery, mode Mode) time.Duration {
		b := time.Hour
		for i := 0; i < 3; i++ {
			r, err := env.RunTPCH(q, mode, 0, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if r.TimedOut {
				t.Fatalf("%s %s timed out", q.ID, mode)
			}
			if r.Elapsed < b {
				b = r.Elapsed
			}
		}
		return b
	}
	for _, id := range []string{"Q2", "Q13", "Q18"} {
		q, _ := tpch.QueryByID(id)
		orig := best(q, Original)
		agg := best(q, Aggify)
		plus := best(q, AggifyPlus)
		if orig < 2*agg {
			t.Errorf("%s: Aggify gain %.1fx, want > 2x (orig=%v aggify=%v)",
				id, float64(orig)/float64(agg), orig, agg)
		}
		if orig < plus {
			t.Errorf("%s: Aggify+ (%v) slower than original (%v)", id, plus, orig)
		}
	}
}

// TestFiguresSmoke exercises every table/figure generator end to end at a
// tiny scale.
func TestFiguresSmoke(t *testing.T) {
	cfg := Config{SF: 0.002, Scale: 0.1, Timeout: time.Minute, Reps: 1, Profile: DefaultConfig().Profile}
	if _, err := Table1(); err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func() (*Table, error){
		"fig9a":  func() (*Table, error) { return Fig9a(cfg) },
		"table2": func() (*Table, error) { return Table2(cfg) },
		"fig9b":  func() (*Table, error) { return Fig9b(cfg) },
		"fig9c":  func() (*Table, error) { return Fig9c(cfg) },
		"fig10a": func() (*Table, error) { return Fig10a(cfg, []int{5, 50}) },
		"fig10b": func() (*Table, error) { return Fig10b(cfg, []int{5, 50}) },
		"fig10c": func() (*Table, error) { return Fig10c(cfg, []int{30, 300}) },
		"fig11":  func() (*Table, error) { return Fig11(cfg, []int{10, 100}) },
	} {
		tab, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 || tab.Render() == "" {
			t.Fatalf("%s: empty table", name)
		}
	}
}
