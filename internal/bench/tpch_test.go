package bench

import (
	"testing"
	"time"

	"aggify/internal/tpch"
)

const testSF = 0.002

func TestAllModesAgreeOnTinyTPCH(t *testing.T) {
	env, err := LoadTPCH(testSF)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range tpch.Queries() {
		limit := 30
		var results [3]*Result
		for _, mode := range []Mode{Original, Aggify, AggifyPlus} {
			r, err := env.RunTPCH(q, mode, limit, 2*time.Minute)
			if err != nil {
				t.Fatalf("%s %s: %v", q.ID, mode, err)
			}
			if r.TimedOut {
				t.Fatalf("%s %s timed out at tiny scale", q.ID, mode)
			}
			results[mode] = r
		}
		if results[Original].Rows != results[Aggify].Rows || results[Original].Rows != results[AggifyPlus].Rows {
			t.Fatalf("%s: row counts %d / %d / %d", q.ID,
				results[Original].Rows, results[Aggify].Rows, results[AggifyPlus].Rows)
		}
		if results[Original].Checksum != results[Aggify].Checksum {
			t.Fatalf("%s: Original and Aggify results differ", q.ID)
		}
		if results[Original].Checksum != results[AggifyPlus].Checksum {
			t.Fatalf("%s: Original and Aggify+ results differ", q.ID)
		}
	}
}

func TestAggifyEliminatesWorktables(t *testing.T) {
	env, err := LoadTPCH(testSF)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := tpch.QueryByID("Q2")
	orig, err := env.RunTPCH(q, Original, 20, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := env.RunTPCH(q, Aggify, 20, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Stats.WorktableWrites == 0 {
		t.Fatal("original cursor loops must materialize worktables")
	}
	if agg.Stats.WorktableWrites != 0 {
		t.Fatalf("aggify run still wrote %d worktable rows", agg.Stats.WorktableWrites)
	}
	if agg.Stats.TotalReads() >= orig.Stats.TotalReads() {
		t.Fatalf("aggify reads (%d) should undercut original (%d)",
			agg.Stats.TotalReads(), orig.Stats.TotalReads())
	}
}

func TestTimeoutReporting(t *testing.T) {
	env, err := LoadTPCH(testSF)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := tpch.QueryByID("Q19") // full scan of lineitem x part through a cursor
	r, err := env.RunTPCH(q, Original, 0, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatal("nanosecond budget must time out")
	}
}
