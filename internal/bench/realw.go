package bench

import (
	"sync"
	"time"

	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/workloads/realw"
)

var (
	realwMu    sync.Mutex
	realwCache = map[float64]*Env{}
)

// LoadRealW builds (or returns a cached) customer-workload environment
// (W1–W3) with loops L1–L8 registered in both original and aggified form.
func LoadRealW(scale float64) (*Env, error) {
	realwMu.Lock()
	defer realwMu.Unlock()
	if env, ok := realwCache[scale]; ok {
		return env, nil
	}
	eng := engine.New()
	interp.Install(eng)
	if err := realw.Load(eng, scale); err != nil {
		return nil, err
	}
	env := newEnv(eng, scale)
	env.SessionInit = realw.TempSetup
	for _, l := range realw.Loops() {
		if err := env.RegisterWorkloadFuncs(l.Setup, l.Funcs); err != nil {
			return nil, err
		}
	}
	realwCache[scale] = env
	return env, nil
}

// RunLoop executes one customer-workload loop under a mode.
func (env *Env) RunLoop(l *realw.Loop, mode Mode, limit int, timeout time.Duration) (*Result, error) {
	res, err := env.RunDriver(l.Driver(limit), mode, timeout)
	if err != nil {
		return nil, err
	}
	res.Query = l.ID
	return res, nil
}
