package bench

import (
	"strings"
	"testing"

	"aggify/internal/tpch"
)

// TestInstrumentedReadsMatchSessionDelta is the EXPLAIN ANALYZE acceptance
// invariant on real workload queries: summing the per-operator exclusive
// stats deltas reproduces the session's storage-stats delta for the run,
// under every execution mode.
func TestInstrumentedReadsMatchSessionDelta(t *testing.T) {
	env, err := LoadTPCH(testSF)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range tpch.Queries() {
		for _, mode := range []Mode{Original, Aggify, AggifyPlus} {
			r, err := env.RunDriverInstrumented(q.Driver(10), mode, nil)
			if err != nil {
				t.Fatalf("%s %s: %v", q.ID, mode, err)
			}
			if r.Stats.LogicalReads == 0 {
				t.Errorf("%s %s: no logical reads measured", q.ID, mode)
			}
			if r.OperatorReads != r.Stats {
				t.Errorf("%s %s: per-operator exclusive sum %+v != session delta %+v",
					q.ID, mode, r.OperatorReads, r.Stats)
			}
			if len(r.PlanLines) == 0 || !strings.Contains(r.PlanLines[0], "rows=") {
				t.Errorf("%s %s: plan lines missing runtime counters: %q", q.ID, mode, r.PlanLines)
			}
		}
	}
}

// TestInstrumentedMatchesUninstrumented guards against the instrumentation
// wrapper changing results: same rows and checksum as the plain run.
func TestInstrumentedMatchesUninstrumented(t *testing.T) {
	env, err := LoadTPCH(testSF)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := tpch.QueryByID("Q2")
	plain, err := env.RunDriver(q.Driver(20), Aggify, 0)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := env.RunDriverInstrumented(q.Driver(20), Aggify, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rows != instr.Rows || plain.Checksum != instr.Checksum {
		t.Fatalf("instrumented run differs: rows %d/%d checksum %x/%x",
			plain.Rows, instr.Rows, plain.Checksum, instr.Checksum)
	}
}

// TestBreakdownRenders smoke-tests the per-operator comparison table.
func TestBreakdownRenders(t *testing.T) {
	q, _ := tpch.QueryByID("Q14")
	cfg := DefaultConfig()
	cfg.SF = testSF
	tbl, err := Breakdown(cfg, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"Original", "Aggify+", "rows=", "reads="} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown output missing %q:\n%s", want, out)
		}
	}
}
