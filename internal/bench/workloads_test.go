package bench

import (
	"testing"
	"time"

	"aggify/internal/sqltypes"
	"aggify/internal/wire"
	"aggify/internal/workloads/realw"
	"aggify/internal/workloads/rubis"
)

func TestRealWorkloadModesAgree(t *testing.T) {
	env, err := LoadRealW(0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range realw.Loops() {
		var results []*Result
		for _, mode := range []Mode{Original, Aggify, AggifyPlus} {
			r, err := env.RunLoop(l, mode, 0, time.Minute)
			if err != nil {
				t.Fatalf("%s %s: %v", l.ID, mode, err)
			}
			if r.TimedOut {
				t.Fatalf("%s %s timed out", l.ID, mode)
			}
			results = append(results, r)
		}
		for _, r := range results[1:] {
			if r.Checksum != results[0].Checksum {
				t.Fatalf("%s: %s result differs from Original", l.ID, r.Mode)
			}
		}
	}
}

func TestRealWorkloadNestedLoopTransforms(t *testing.T) {
	env, err := LoadRealW(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// L8 is nested: both its loops must be gone from the aggified UDF.
	def := env.AggifiedFuncs["segmentscore"]
	if def == nil {
		t.Fatal("segmentscore not transformed")
	}
	found := 0
	for name := range env.AggifiedFuncs {
		_ = name
		found++
	}
	if found != 8 {
		t.Fatalf("expected 8 transformed loop UDFs, got %d", found)
	}
}

func TestRubisScenariosAgree(t *testing.T) {
	eng, err := LoadRubis(0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range rubis.Scenarios() {
		orig, err := RunRubisScenario(eng, sc, Original, wire.LAN, 0.2)
		if err != nil {
			t.Fatalf("%s original: %v", sc.Name, err)
		}
		agg, err := RunRubisScenario(eng, sc, Aggify, wire.LAN, 0.2)
		if err != nil {
			t.Fatalf("%s aggified: %v", sc.Name, err)
		}
		of, _ := orig.Value.AsFloat()
		af, _ := agg.Value.AsFloat()
		if d := of - af; d > 1e-6 || d < -1e-6 {
			t.Fatalf("%s: original %v vs aggified %v", sc.Name, orig.Value, agg.Value)
		}
		// The aggified client must move far less data when the loop is
		// non-trivial.
		if orig.Iterations > 20 && agg.Meter.BytesToClient*3 > orig.Meter.BytesToClient {
			t.Fatalf("%s: aggified moved %d bytes vs %d (iters=%d)",
				sc.Name, agg.Meter.BytesToClient, orig.Meter.BytesToClient, orig.Iterations)
		}
	}
}

func TestTempTableLoopsShareState(t *testing.T) {
	env, err := LoadRealW(0.05)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := realw.LoopByID("L2")
	r, err := env.RunLoop(l, Aggify, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 1 {
		t.Fatalf("rows = %d", r.Rows)
	}
	_ = sqltypes.Null
}
