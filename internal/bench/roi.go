package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"aggify/internal/ast"
	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/wire"
)

// The Figure 10(c) experiment: the §2.2 cumulative-ROI program widened to
// 50 investment categories per row (the paper's Experiment 3). The original
// client program pulls every row (200 bytes each) and folds the 50 columns
// locally; the Aggify version ships a 50-parameter custom aggregate and
// receives one 200-byte tuple regardless of the iteration count.

// ROIColumns is the number of per-category ROI columns.
const ROIColumns = 50

var (
	roiMu    sync.Mutex
	roiCache = map[int]*engine.Engine{}
)

// LoadROI builds (or returns a cached) engine with `rows` investment rows
// and the 50-parameter aggregate registered.
func LoadROI(rows int) (*engine.Engine, error) {
	roiMu.Lock()
	defer roiMu.Unlock()
	if eng, ok := roiCache[rows]; ok {
		return eng, nil
	}
	eng := engine.New()
	interp.Install(eng)

	cols := make([]storage.Column, 0, ROIColumns+2)
	cols = append(cols, storage.Col("investor_id", sqltypes.Int), storage.Col("m", sqltypes.Int))
	for i := 1; i <= ROIColumns; i++ {
		cols = append(cols, storage.Col(fmt.Sprintf("roi%d", i), sqltypes.Float))
	}
	tab, err := eng.CreateTable("monthly_investments", storage.NewSchema(cols...))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(31337))
	row := make([]sqltypes.Value, len(cols))
	tx := eng.TxnMgr.Begin()
	for r := 1; r <= rows; r++ {
		row[0] = sqltypes.NewInt(int64(1 + r%100))
		row[1] = sqltypes.NewInt(int64(r))
		for i := 2; i < len(cols); i++ {
			row[i] = sqltypes.NewFloat(rng.Float64()*0.1 - 0.02)
		}
		if err := tab.Insert(tx, row); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	sess := eng.NewSession()
	if _, err := interp.RunScript(sess, mustParseScript(roiAggregateSource())); err != nil {
		return nil, err
	}
	roiCache[rows] = eng
	return eng, nil
}

// roiAggregateSource generates the 50-parameter CREATE AGGREGATE (the
// Figure 6 aggregate widened to 50 columns).
func roiAggregateSource() string {
	var params, fields, initB, accum, term []string
	for i := 1; i <= ROIColumns; i++ {
		params = append(params, fmt.Sprintf("@r%d float", i))
		fields = append(fields, fmt.Sprintf("@c%d float", i))
		initB = append(initB, fmt.Sprintf("set @c%d = 1.0;", i))
		accum = append(accum, fmt.Sprintf("set @c%d = @c%d * (@r%d + 1);", i, i, i))
		term = append(term, fmt.Sprintf("@c%d", i))
	}
	return fmt.Sprintf(`
create aggregate CumROI50Agg(%s) returns tuple as
begin
  fields (%s, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      %s
      set @isInitialized = true;
    end
    %s
  end
  terminate begin return (select %s); end
end`,
		strings.Join(params, ", "),
		strings.Join(fields, ", "),
		strings.Join(initB, "\n      "),
		strings.Join(accum, "\n    "),
		strings.Join(term, ", "))
}

// RunROI executes the cumulative-ROI client program over the first `top`
// rows in Original or Aggify mode.
func RunROI(eng *engine.Engine, top int, mode Mode, profile wire.Profile) (*ClientResult, error) {
	return RunROIWithFetchSize(eng, top, 0, mode, profile)
}

// RunROIWithFetchSize is RunROI with an explicit client fetch batch size
// (0 = the driver default), for the fetch-size ablation.
func RunROIWithFetchSize(eng *engine.Engine, top, fetchSize int, mode Mode, profile wire.Profile) (*ClientResult, error) {
	conn := client.Connect(eng, profile)
	if fetchSize > 0 {
		conn.FetchSize = fetchSize
	}
	res := &ClientResult{Scenario: "CumulativeROI50", Mode: mode, Iterations: top}
	start := time.Now()
	switch mode {
	case Original:
		var sel []string
		for i := 1; i <= ROIColumns; i++ {
			sel = append(sel, fmt.Sprintf("roi%d", i))
		}
		stmt, err := conn.Prepare(fmt.Sprintf("select top %d %s from monthly_investments", top, strings.Join(sel, ", ")))
		if err != nil {
			return nil, err
		}
		rs, err := stmt.Query()
		if err != nil {
			return nil, err
		}
		cum := make([]float64, ROIColumns)
		for i := range cum {
			cum[i] = 1.0
		}
		n := 0
		for rs.Next() {
			row := rs.Row()
			for i := 0; i < ROIColumns; i++ {
				f, _ := row[i].AsFloat()
				cum[i] *= f + 1
			}
			n++
		}
		rs.Close()
		sum := 0.0
		for i := range cum {
			sum += cum[i] - 1
		}
		res.Value = sqltypes.NewFloat(sum)
		res.Iterations = n
	case Aggify:
		var args []string
		for i := 1; i <= ROIColumns; i++ {
			args = append(args, fmt.Sprintf("q.roi%d", i))
		}
		var sel []string
		for i := 1; i <= ROIColumns; i++ {
			sel = append(sel, fmt.Sprintf("roi%d", i))
		}
		stmt, err := conn.Prepare(fmt.Sprintf(
			"select CumROI50Agg(%s) from (select top %d %s from monthly_investments) q",
			strings.Join(args, ", "), top, strings.Join(sel, ", ")))
		if err != nil {
			return nil, err
		}
		row, err := stmt.QueryRow()
		if err != nil {
			return nil, err
		}
		sum := 0.0
		if !row[0].IsNull() {
			for _, v := range row[0].Tuple() {
				f, _ := v.AsFloat()
				sum += f - 1
			}
		} else {
			sum = 0
		}
		res.Value = sqltypes.NewFloat(sum)
	default:
		return nil, fmt.Errorf("bench: ROI supports Original and Aggify modes")
	}
	res.Compute = time.Since(start)
	res.Network = conn.NetworkTime()
	res.Elapsed = res.Compute + res.Network
	res.Meter = conn.Meter()
	return res, nil
}

func mustParseScript(src string) []ast.Stmt { return parser.MustParse(src) }
