// Package bench contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (§10). Each experiment is
// exposed both to `go test -bench` (bench_test.go at the repository root)
// and to cmd/aggify-bench, which prints the paper-style rows.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/froid"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/storage"
	"aggify/internal/tpch"
)

// Mode selects the execution strategy under measurement.
type Mode int

const (
	// Original runs the cursor-loop UDFs as written.
	Original Mode = iota
	// Aggify runs the automatically transformed UDFs (loop → custom
	// aggregate, Eq. 5/6 rewrite).
	Aggify
	// AggifyPlus additionally Froid-inlines the transformed UDFs into the
	// driver query, enabling the planner's decorrelation (§8.2).
	AggifyPlus
)

func (m Mode) String() string {
	switch m {
	case Original:
		return "Original"
	case Aggify:
		return "Aggify"
	case AggifyPlus:
		return "Aggify+"
	}
	return "?"
}

// aggifiedSuffix namespaces the transformed UDFs so both versions coexist
// in one engine.
const aggifiedSuffix = "_aggified"

// Env is a loaded benchmark database with both the original and the
// transformed versions of every workload UDF registered.
type Env struct {
	Eng *engine.Engine
	SF  float64
	// AggifiedFuncs maps original UDF names to their transformed
	// definitions (for Froid inlining in Aggify+ mode).
	AggifiedFuncs map[string]*ast.CreateFunction
	// SessionInit runs on every measurement session before the driver
	// (creates the temp tables some loops write into).
	SessionInit string
}

// newEnv wraps a populated engine.
func newEnv(eng *engine.Engine, sf float64) *Env {
	return &Env{Eng: eng, SF: sf, AggifiedFuncs: map[string]*ast.CreateFunction{}}
}

// RegisterWorkloadFuncs executes a setup script defining cursor-loop UDFs,
// transforms each named UDF with Aggify, and registers the generated
// aggregates plus the rewritten UDFs under <name>_aggified.
func (env *Env) RegisterWorkloadFuncs(setup string, funcs []string) error {
	sess := env.Eng.NewSession()
	if _, err := interp.RunScript(sess, parser.MustParse(setup)); err != nil {
		return fmt.Errorf("bench: setup: %w", err)
	}
	for _, fname := range funcs {
		def, ok := env.Eng.Function(fname)
		if !ok {
			return fmt.Errorf("bench: missing UDF %s", fname)
		}
		rewritten, res, err := core.TransformFunction(def, core.Options{})
		if err != nil {
			return fmt.Errorf("bench: aggify %s: %w", fname, err)
		}
		for _, lr := range res.Loops {
			if err := env.Eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
				return err
			}
		}
		env.AggifiedFuncs[fname] = rewritten
		reg := ast.CloneStmt(rewritten).(*ast.CreateFunction)
		reg.Name = fname + aggifiedSuffix
		renameFuncCallsInStmt(reg, env.renamable())
		if err := env.Eng.RegisterFunction(reg); err != nil {
			return err
		}
	}
	return nil
}

var (
	tpchMu    sync.Mutex
	tpchCache = map[float64]*Env{}
)

// LoadTPCH builds (or returns a cached) TPC-H environment at the given
// scale factor with the full six-query workload registered.
func LoadTPCH(sf float64) (*Env, error) {
	tpchMu.Lock()
	defer tpchMu.Unlock()
	if env, ok := tpchCache[sf]; ok {
		return env, nil
	}
	eng := engine.New()
	interp.Install(eng)
	if err := tpch.Load(eng, sf); err != nil {
		return nil, err
	}
	env := newEnv(eng, sf)
	for _, q := range tpch.Queries() {
		if err := env.RegisterWorkloadFuncs(q.Setup, q.Funcs); err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
	}
	tpchCache[sf] = env
	return env, nil
}

// renamable returns the set of UDF names that have aggified variants.
func (env *Env) renamable() map[string]bool {
	out := map[string]bool{}
	for name := range env.AggifiedFuncs {
		out[name] = true
	}
	return out
}

// Result is one measured execution.
type Result struct {
	Query    string
	Mode     Mode
	Rows     int
	Elapsed  time.Duration
	Stats    storage.Snapshot
	TimedOut bool
	// Checksum is an order-insensitive hash of the result rows, used by
	// tests to compare modes.
	Checksum uint64
}

// RunTPCH executes one workload query under a mode. limit restricts the
// driving key range (0 = full); timeout caps execution (0 = none), with
// expiry reported as TimedOut — the paper's "forcibly terminated" runs.
func (env *Env) RunTPCH(q *tpch.WorkloadQuery, mode Mode, limit int, timeout time.Duration) (*Result, error) {
	res, err := env.RunDriver(q.Driver(limit), mode, timeout)
	if err != nil {
		return nil, err
	}
	res.Query = q.ID
	return res, nil
}

// RunDriver executes an invoking query under a mode with a fresh session.
func (env *Env) RunDriver(driverSQL string, mode Mode, timeout time.Duration) (*Result, error) {
	return env.RunDriverSession(driverSQL, mode, timeout, nil)
}

// RunDriverSession is RunDriver with a hook to configure the measurement
// session (planner options, worktable mode) before execution.
func (env *Env) RunDriverSession(driverSQL string, mode Mode, timeout time.Duration, configure func(*engine.Session)) (*Result, error) {
	driver, err := env.rewriteDriver(driverSQL, mode)
	if err != nil {
		return nil, err
	}
	sess := env.Eng.NewSession()
	if configure != nil {
		configure(sess)
	}
	if env.SessionInit != "" {
		if _, err := interp.RunScript(sess, parser.MustParse(env.SessionInit)); err != nil {
			return nil, err
		}
	}
	var stop chan struct{}
	if timeout > 0 {
		stop = make(chan struct{})
		timer := time.AfterFunc(timeout, func() { close(stop) })
		defer timer.Stop()
		sess.Interrupt = stop
	}
	before := sess.Stats.Snapshot()
	start := time.Now()
	_, rows, err := sess.Query(driver, sess.Ctx(nil, nil))
	elapsed := time.Since(start)
	res := &Result{Mode: mode, Elapsed: elapsed, Stats: sess.Stats.Snapshot().Sub(before)}
	if err != nil {
		if err == exec.ErrInterrupted {
			res.TimedOut = true
			return res, nil
		}
		return nil, err
	}
	res.Rows = len(rows)
	res.Checksum = checksumRows(rows)
	return res, nil
}

// rewriteDriver parses a driver query and applies the mode's UDF rewrite
// (rename to the aggified variants, or Froid-inline them for Aggify+).
func (env *Env) rewriteDriver(driverSQL string, mode Mode) (*ast.Select, error) {
	driver := parser.MustParse(driverSQL)[0].(*ast.QueryStmt).Query
	switch mode {
	case Original:
		// as parsed
	case Aggify:
		renameFuncCallsInSelect(driver, env.renamable())
	case AggifyPlus:
		inlined, _, err := froid.InlineInSelect(driver, func(name string) (*ast.CreateFunction, bool) {
			def, ok := env.AggifiedFuncs[name]
			return def, ok
		})
		if err != nil {
			return nil, err
		}
		driver = inlined
	}
	return driver, nil
}

// InstrumentedResult is a measured execution carrying the per-operator
// runtime breakdown alongside the headline numbers.
type InstrumentedResult struct {
	Result
	// PlanLines is the EXPLAIN ANALYZE tree: one line per operator with its
	// runtime counters, as rendered by plan.Instrumentation.
	PlanLines []string
	// OperatorReads sums the per-operator exclusive read deltas; by
	// construction it equals Result.Stats (tests assert the invariant).
	OperatorReads storage.Snapshot
}

// RunDriverInstrumented executes a driver query under a mode with an
// instrumented operator tree, returning both the usual measurement and the
// per-operator breakdown.
func (env *Env) RunDriverInstrumented(driverSQL string, mode Mode, configure func(*engine.Session)) (*InstrumentedResult, error) {
	driver, err := env.rewriteDriver(driverSQL, mode)
	if err != nil {
		return nil, err
	}
	sess := env.Eng.NewSession()
	if configure != nil {
		configure(sess)
	}
	if env.SessionInit != "" {
		if _, err := interp.RunScript(sess, parser.MustParse(env.SessionInit)); err != nil {
			return nil, err
		}
	}
	p, err := sess.PlanQuery(driver, nil)
	if err != nil {
		return nil, err
	}
	before := sess.Stats.Snapshot()
	start := time.Now()
	rows, ins, err := p.RunInstrumented(sess.Ctx(nil, nil))
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	res := &InstrumentedResult{
		Result: Result{
			Mode:     mode,
			Rows:     len(rows),
			Elapsed:  elapsed,
			Stats:    sess.Stats.Snapshot().Sub(before),
			Checksum: checksumRows(rows),
		},
		PlanLines:     strings.Split(strings.TrimRight(ins.Render(), "\n"), "\n"),
		OperatorReads: ins.TotalExclusive(),
	}
	return res, nil
}

// checksumRows builds an order-insensitive checksum of a result set.
func checksumRows(rows []exec.Row) uint64 {
	var sum uint64
	for _, r := range rows {
		h := uint64(14695981039346656037)
		for _, v := range r {
			h = (h ^ hashValue(v)) * 1099511628211
		}
		sum += h
	}
	return sum
}

func hashValue(v interface{ String() string }) uint64 {
	s := v.String()
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// renameFuncCallsInSelect appends the aggified suffix to calls of the
// given UDFs throughout a query.
func renameFuncCallsInSelect(q *ast.Select, names map[string]bool) {
	ast.WalkSelectExprs(q, func(e ast.Expr) bool {
		if fc, ok := e.(*ast.FuncCall); ok && names[strings.ToLower(fc.Name)] {
			fc.Name = strings.ToLower(fc.Name) + aggifiedSuffix
		}
		return true
	})
}

// renameFuncCallsInStmt does the same inside a statement tree (so aggified
// UDFs call the aggified versions of their callees).
func renameFuncCallsInStmt(s ast.Stmt, names map[string]bool) {
	ast.WalkStmt(s, func(st ast.Stmt) bool {
		ast.StmtExprs(st, func(e ast.Expr) bool {
			if fc, ok := e.(*ast.FuncCall); ok && names[strings.ToLower(fc.Name)] {
				fc.Name = strings.ToLower(fc.Name) + aggifiedSuffix
			}
			return true
		})
		return true
	})
}
