package bench

import (
	"testing"

	"aggify/internal/sqltypes"
	"aggify/internal/wire"
)

// TestMinCostClientTCPMatchesVirtual is the end-to-end acceptance check:
// the MinCostSupplier client program runs against a live aggifyd over
// loopback TCP, the aggified version measurably transfers fewer bytes and
// round trips than the original, and both agree exactly with the virtual
// meter's numbers for the same workload.
func TestMinCostClientTCPMatchesVirtual(t *testing.T) {
	env, err := LoadTPCH(testSF)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	run := func(mode Mode, overTCP bool) *ClientResult {
		t.Helper()
		var res *ClientResult
		if overTCP {
			res, err = RunMinCostClientTCP(env, n, mode, wire.LAN)
		} else {
			res, err = RunMinCostClient(env, n, mode, wire.LAN)
		}
		if err != nil {
			t.Fatalf("%v overTCP=%v: %v", mode, overTCP, err)
		}
		return res
	}

	origTCP := run(Original, true)
	aggTCP := run(Aggify, true)
	origVirt := run(Original, false)
	aggVirt := run(Aggify, false)

	// Each mode computes the same answer regardless of transport.
	if !sqltypes.Equal(origTCP.Value, origVirt.Value) {
		t.Fatalf("original checksum differs by transport: %v vs %v", origTCP.Value, origVirt.Value)
	}
	if !sqltypes.Equal(aggTCP.Value, aggVirt.Value) {
		t.Fatalf("aggify result differs by transport: %v vs %v", aggTCP.Value, aggVirt.Value)
	}
	// The paper's claim holds over real sockets: fewer bytes, fewer round
	// trips.
	if aggTCP.Meter.TotalBytes() >= origTCP.Meter.TotalBytes() {
		t.Fatalf("aggify moved %d bytes over TCP, original %d",
			aggTCP.Meter.TotalBytes(), origTCP.Meter.TotalBytes())
	}
	if aggTCP.Meter.RoundTrips >= origTCP.Meter.RoundTrips {
		t.Fatalf("aggify used %d round trips over TCP, original %d",
			aggTCP.Meter.RoundTrips, origTCP.Meter.RoundTrips)
	}
	// The virtual meter prices the exact frames the socket carried.
	if origTCP.Meter != origVirt.Meter {
		t.Fatalf("original: socket meter %+v != virtual meter %+v",
			origTCP.Meter, origVirt.Meter)
	}
	if aggTCP.Meter != aggVirt.Meter {
		t.Fatalf("aggify: socket meter %+v != virtual meter %+v",
			aggTCP.Meter, aggVirt.Meter)
	}
}
