package bench

import (
	"fmt"

	"aggify/internal/tpch"
)

// Breakdown runs one TPC-H workload query under Original, Aggify, and
// Aggify+ with instrumented operator trees and renders the per-operator
// runtime comparison: where the cursor loop burns its reads versus where the
// aggified plans spend theirs. limit restricts the driving key range (0 =
// full range).
func Breakdown(cfg Config, q *tpch.WorkloadQuery, limit int) (*Table, error) {
	env, err := LoadTPCH(cfg.SF)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("%s per-operator breakdown (SF=%g)", q.ID, cfg.SF),
		Columns: []string{"Mode", "Operator"},
		Notes: []string{
			"reads are exclusive per operator (summing the column reproduces the run's stats delta); time is inclusive of the subtree",
			"Original's cursor-loop UDF runs inside the driver's projection, so its reads surface on the operator that evaluates the call",
		},
	}
	for _, mode := range []Mode{Original, Aggify, AggifyPlus} {
		r, err := env.RunDriverInstrumented(q.Driver(limit), mode, nil)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", q.ID, mode, err)
		}
		t.AddRow(mode.String(), fmt.Sprintf("rows=%d elapsed=%s reads=%d", r.Rows, fmtDur(r.Elapsed), r.Stats.LogicalReads))
		for _, line := range r.PlanLines {
			t.AddRow("", line)
		}
	}
	return t, nil
}
