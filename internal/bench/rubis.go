package bench

import (
	"fmt"
	"sync"
	"time"

	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/sqltypes"
	"aggify/internal/wire"
	"aggify/internal/workloads/rubis"
)

var (
	rubisMu    sync.Mutex
	rubisCache = map[float64]*engine.Engine{}
)

// LoadRubis builds (or returns a cached) RUBiS engine at the given scale
// with every scenario's custom aggregate registered server-side.
func LoadRubis(scale float64) (*engine.Engine, error) {
	rubisMu.Lock()
	defer rubisMu.Unlock()
	if eng, ok := rubisCache[scale]; ok {
		return eng, nil
	}
	eng := engine.New()
	interp.Install(eng)
	if err := rubis.Load(eng, scale); err != nil {
		return nil, err
	}
	setup := client.Connect(eng, wire.Profile{})
	for _, sc := range rubis.Scenarios() {
		if err := setup.Exec(sc.AggregateSetup); err != nil {
			return nil, fmt.Errorf("bench: rubis %s: %w", sc.Name, err)
		}
	}
	rubisCache[scale] = eng
	return eng, nil
}

// ClientResult is one measured client-program execution (Figure 9(b) and
// the Figure 10(b)/(c) data-movement experiments).
type ClientResult struct {
	Scenario string
	Mode     Mode
	// Iterations is the number of rows the original loop iterates (shown in
	// the paper's x-axis labels).
	Iterations int
	// Compute is the measured local time; Network the deterministic virtual
	// network time for the metered traffic; Elapsed their sum.
	Compute time.Duration
	Network time.Duration
	Elapsed time.Duration
	Meter   wire.Meter
	Value   sqltypes.Value
}

// RunRubisScenario executes one Figure 9(b) scenario in Original or Aggify
// mode over the given network profile.
func RunRubisScenario(eng *engine.Engine, sc *rubis.Scenario, mode Mode, profile wire.Profile, scale float64) (*ClientResult, error) {
	conn := client.Connect(eng, profile)
	arg := sc.Arg(rubis.SizesFor(scale))
	res := &ClientResult{Scenario: sc.Name, Mode: mode}
	start := time.Now()
	switch mode {
	case Original:
		v, iters, err := sc.Original(conn, arg)
		if err != nil {
			return nil, err
		}
		res.Value = v
		res.Iterations = iters
	case Aggify:
		v, err := sc.Aggified(conn, arg)
		if err != nil {
			return nil, err
		}
		res.Value = v
	default:
		return nil, fmt.Errorf("bench: rubis scenarios support Original and Aggify modes")
	}
	res.Compute = time.Since(start)
	res.Network = conn.NetworkTime()
	res.Elapsed = res.Compute + res.Network
	res.Meter = conn.Meter()
	return res, nil
}
