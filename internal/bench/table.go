package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result: the rows/series a paper table or
// figure reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render aligns the table as text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtDur renders a duration compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtResult renders a run's time, using the paper's ⊘ for timeouts.
func fmtResult(r *Result) string {
	if r.TimedOut {
		return "⊘ timeout"
	}
	return fmtDur(r.Elapsed)
}

// speedup renders a ratio column.
func speedup(base, other *Result) string {
	if base.TimedOut || other.TimedOut || other.Elapsed == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base.Elapsed)/float64(other.Elapsed))
}

// fmtReads renders logical reads with the paper's "millions" convention.
func fmtReads(n int64) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	}
	if n >= 1_000 {
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// fmtBytes renders byte counts.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
