package bench

import (
	"fmt"
	"time"

	"aggify/internal/client"
	"aggify/internal/sqltypes"
	"aggify/internal/wire"
)

// RunMinCostClient is the paper's Experiment 2 (Figure 10(b)): a client
// program computing the minimum-cost supplier for the first n parts.
//
// The original program fetches each part's (ps_supplycost, s_name) offers
// to the client — roughly 140 bytes per part with TPC-H's 4 offers — and
// folds them in application code. The rewritten program runs one query
// whose custom aggregate (registered by the Aggify pipeline in LoadTPCH)
// reduces each part inside the DBMS, returning ~38 bytes per part; the
// paper reports the same ~3.6x data-movement reduction.
func RunMinCostClient(env *Env, n int, mode Mode, profile wire.Profile) (*ClientResult, error) {
	conn := client.Connect(env.Eng, profile)
	return runMinCostOn(conn, n, mode)
}

// runMinCostOn drives the scenario over an already-open connection (either
// transport: the in-process virtual meter or a live aggifyd socket).
func runMinCostOn(conn *client.Conn, n int, mode Mode) (*ClientResult, error) {
	res := &ClientResult{Scenario: "MinCostSupplier", Mode: mode, Iterations: n}
	start := time.Now()
	switch mode {
	case Original:
		parts, err := conn.Prepare("select p_partkey from part where p_partkey <= ?")
		if err != nil {
			return nil, err
		}
		offers, err := conn.Prepare(`select ps_supplycost, s_name from partsupp, supplier
		                             where ps_partkey = ? and ps_suppkey = s_suppkey`)
		if err != nil {
			return nil, err
		}
		prs, err := parts.Query(sqltypes.NewInt(int64(n)))
		if err != nil {
			return nil, err
		}
		checksum := 0.0
		count := 0
		for prs.Next() {
			pkey := prs.Int64("p_partkey")
			ors, err := offers.Query(sqltypes.NewInt(pkey))
			if err != nil {
				return nil, err
			}
			best := 1e18
			bestName := ""
			for ors.Next() {
				if c := ors.Float64("ps_supplycost"); c < best {
					best = c
					bestName = ors.String("s_name")
				}
			}
			ors.Close()
			if bestName != "" {
				checksum += best
			}
			count++
		}
		prs.Close()
		res.Value = sqltypes.NewFloat(checksum)
		res.Iterations = count
	case Aggify:
		stmt, err := conn.Prepare("select p_partkey, minCostSupp_aggified(p_partkey, 0) as supp from part where p_partkey <= ?")
		if err != nil {
			return nil, err
		}
		rs, err := stmt.Query(sqltypes.NewInt(int64(n)))
		if err != nil {
			return nil, err
		}
		count := 0
		for rs.Next() {
			_ = rs.String("supp")
			count++
		}
		rs.Close()
		res.Value = sqltypes.NewInt(int64(count))
	default:
		return nil, fmt.Errorf("bench: MinCostSupplier supports Original and Aggify modes")
	}
	res.Compute = time.Since(start)
	res.Network = conn.NetworkTime()
	res.Elapsed = res.Compute + res.Network
	res.Meter = conn.Meter()
	return res, nil
}
