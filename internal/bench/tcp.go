package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/server"
	"aggify/internal/wire"
)

// ServeLoopback starts an aggifyd server for the engine on an ephemeral
// loopback port, so client experiments can run over a real TCP socket
// instead of the virtual meter. It returns the dialable address and a stop
// function that drains the server.
func ServeLoopback(eng *engine.Engine) (string, func() error, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := server.New(eng)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && err != server.ErrServerClosed {
			return err
		}
		return nil
	}
	return lis.Addr().String(), stop, nil
}

// RunMinCostClientTCP is RunMinCostClient over a live loopback-TCP aggifyd
// serving the same environment: the meter reports measured socket bytes
// rather than virtual ones, validating the simulated series' direction.
func RunMinCostClientTCP(env *Env, n int, mode Mode, profile wire.Profile) (*ClientResult, error) {
	addr, stop, err := ServeLoopback(env.Eng)
	if err != nil {
		return nil, err
	}
	defer stop()
	conn, err := client.Dial(addr, profile)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	res, err := runMinCostOn(conn, n, mode)
	if err != nil {
		return nil, err
	}
	res.Scenario = fmt.Sprintf("%s/tcp", res.Scenario)
	return res, nil
}
