package bench

import (
	"fmt"
	"runtime"
	"time"

	"aggify/internal/tpch"
	"aggify/internal/wire"
	"aggify/internal/workloads/applicability"
	"aggify/internal/workloads/realw"
	"aggify/internal/workloads/rubis"
)

// Config holds the experiment-wide knobs exposed by cmd/aggify-bench.
type Config struct {
	// SF is the TPC-H scale factor (the paper used 10; default here is
	// laptop-scale).
	SF float64
	// Scale drives the RUBiS / customer-workload generators.
	Scale float64
	// Timeout is the per-run budget; expired runs are reported with the
	// paper's ⊘ marker ("forcibly terminated").
	Timeout time.Duration
	// Reps is the number of repetitions (best time is reported, matching
	// the paper's warm-buffer-pool setup).
	Reps int
	// Profile is the simulated client/server network.
	Profile wire.Profile
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{SF: 0.01, Scale: 1.0, Timeout: 2 * time.Minute, Reps: 3, Profile: wire.LAN}
}

func (c Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

// best runs fn Reps times and returns the fastest non-failed result; a
// timeout on the first rep is returned immediately (no point repeating).
// A GC between runs keeps one measurement's garbage from being collected
// inside the next (the engine holds the whole database live).
func (c Config) best(fn func() (*Result, error)) (*Result, error) {
	var best *Result
	for i := 0; i < c.reps(); i++ {
		runtime.GC()
		r, err := fn()
		if err != nil {
			return nil, err
		}
		if r.TimedOut {
			return r, nil
		}
		if best == nil || r.Elapsed < best.Elapsed {
			best = r
		}
	}
	return best, nil
}

// Table1 reproduces the paper's Table 1 (applicability analysis).
func Table1() (*Table, error) {
	reports, err := applicability.ScanAll()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 1: Cursor loop usage and Aggify applicability",
		Columns: []string{"Workload", "Total # of while loops", "# of cursor loops", "Aggify-able"},
		Notes: []string{
			"paper: RUBiS 16 / 14 (87.5%) / 14; RUBBoS 41 / 14 (34.1%) / 14; Adempiere 127 / 109 (85.8%) / >80",
			"RUBiS and RUBBoS are transcribed at the paper's full counts; Adempiere is a 1/3-scale subset with the paper's cursor-loop share",
		},
	}
	for _, r := range reports {
		t.AddRow(r.App,
			fmt.Sprintf("%d", r.WhileLoops),
			fmt.Sprintf("%d (%.1f%%)", r.CursorLoops, r.CursorShare()),
			fmt.Sprintf("%d", r.Aggifiable))
	}
	return t, nil
}

// Fig9a reproduces Figure 9(a): TPC-H cursor-loop workload execution times
// for Original, Aggify, and Aggify+ (log-scale bars in the paper).
func Fig9a(cfg Config) (*Table, error) {
	env, err := LoadTPCH(cfg.SF)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 9(a): TPC-H cursor loop workload (SF=%g)", cfg.SF),
		Columns: []string{"Query", "Original", "Aggify", "Aggify+", "Aggify gain", "Aggify+ gain"},
		Notes: []string{
			"paper (SF=10): Q2/Q13/Q21 originals forcibly terminated; Q2,Q14,Q18,Q21 ≥10x from Aggify alone; Q13 ~1000x with Aggify+",
		},
	}
	for _, q := range tpch.Queries() {
		var rs [3]*Result
		for _, mode := range []Mode{Original, Aggify, AggifyPlus} {
			r, err := cfg.best(func() (*Result, error) { return env.RunTPCH(q, mode, 0, cfg.Timeout) })
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.ID, mode, err)
			}
			rs[mode] = r
		}
		t.AddRow(q.ID, fmtResult(rs[Original]), fmtResult(rs[Aggify]), fmtResult(rs[AggifyPlus]),
			speedup(rs[Original], rs[Aggify]), speedup(rs[Original], rs[AggifyPlus]))
	}
	return t, nil
}

// Table2 reproduces the paper's Table 2: logical reads per mode.
func Table2(cfg Config) (*Table, error) {
	env, err := LoadTPCH(cfg.SF)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Table 2: Logical reads, TPC-H cursor loop workload (SF=%g)", cfg.SF),
		Columns: []string{"Qry", "Original", "Aggify", "Aggify+", "Savings (Aggify)", "WT writes (orig)"},
		Notes: []string{
			"reads = base-table + worktable logical reads; the paper reports the same counter",
			"Aggify+ may read MORE than Aggify but run faster (set-oriented plans) — the paper's Q13/Q21 effect",
		},
	}
	for _, q := range tpch.Queries() {
		var rs [3]*Result
		for _, mode := range []Mode{Original, Aggify, AggifyPlus} {
			r, err := env.RunTPCH(q, mode, 0, cfg.Timeout)
			if err != nil {
				return nil, err
			}
			rs[mode] = r
		}
		orig, agg, plus := rs[Original], rs[Aggify], rs[AggifyPlus]
		origReads := "NA (⊘)"
		savings := "NA"
		wt := "NA"
		if !orig.TimedOut {
			origReads = fmtReads(orig.Stats.TotalReads())
			savings = fmtReads(orig.Stats.TotalReads() - agg.Stats.TotalReads())
			wt = fmtReads(orig.Stats.WorktableWrites)
		}
		t.AddRow(q.ID, origReads, fmtReads(agg.Stats.TotalReads()), fmtReads(plus.Stats.TotalReads()), savings, wt)
	}
	return t, nil
}

// Fig9b reproduces Figure 9(b): the RUBiS client-program scenarios.
func Fig9b(cfg Config) (*Table, error) {
	eng, err := LoadRubis(cfg.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 9(b): RUBiS client loops (scale=%g, RTT=%v)", cfg.Scale, cfg.Profile.RTT),
		Columns: []string{"Scenario (iterations)", "Original", "Aggify", "Gain", "Data orig", "Data aggify"},
		Notes: []string{
			"time = client compute + deterministic network time (round trips x RTT + bytes/bandwidth)",
			"paper: Aggify improves all five scenarios, mainly from reduced data transfer",
		},
	}
	for _, sc := range rubis.Scenarios() {
		var orig, agg *ClientResult
		for i := 0; i < cfg.reps(); i++ {
			o, err := RunRubisScenario(eng, sc, Original, cfg.Profile, cfg.Scale)
			if err != nil {
				return nil, err
			}
			if orig == nil || o.Elapsed < orig.Elapsed {
				orig = o
			}
			a, err := RunRubisScenario(eng, sc, Aggify, cfg.Profile, cfg.Scale)
			if err != nil {
				return nil, err
			}
			if agg == nil || a.Elapsed < agg.Elapsed {
				agg = a
			}
		}
		gain := "-"
		if agg.Elapsed > 0 {
			gain = fmt.Sprintf("%.1fx", float64(orig.Elapsed)/float64(agg.Elapsed))
		}
		t.AddRow(fmt.Sprintf("%s (%d)", sc.Name, orig.Iterations),
			fmtDur(orig.Elapsed), fmtDur(agg.Elapsed), gain,
			fmtBytes(orig.Meter.BytesToClient), fmtBytes(agg.Meter.BytesToClient))
	}
	return t, nil
}

// Fig9c reproduces Figure 9(c): the customer-workload loops L1–L8.
func Fig9c(cfg Config) (*Table, error) {
	env, err := LoadRealW(cfg.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 9(c): customer workloads W1-W3, loops L1-L8 (scale=%g)", cfg.Scale),
		Columns: []string{"Loop", "Workload", "Iterations", "Original", "Aggify", "Gain"},
		Notes: []string{
			"paper: gains 2x-22x; L8 (nested) >2x; L2/L6 iterate few tuples and insert into temp tables — small or no gain",
		},
	}
	for _, l := range realw.Loops() {
		orig, err := cfg.best(func() (*Result, error) { return env.RunLoop(l, Original, 0, cfg.Timeout) })
		if err != nil {
			return nil, fmt.Errorf("%s original: %w", l.ID, err)
		}
		agg, err := cfg.best(func() (*Result, error) { return env.RunLoop(l, Aggify, 0, cfg.Timeout) })
		if err != nil {
			return nil, fmt.Errorf("%s aggify: %w", l.ID, err)
		}
		iters := orig.Stats.WorktableWrites // rows the cursor materialized
		t.AddRow(l.ID, l.Workload, fmt.Sprintf("%d", iters),
			fmtResult(orig), fmtResult(agg), speedup(orig, agg))
	}
	return t, nil
}

// Fig10a reproduces Figure 10(a): Q2 scalability with the loop iteration
// count (a predicate on P_PARTKEY, as in the paper's Experiment 1).
func Fig10a(cfg Config, sweep []int) (*Table, error) {
	env, err := LoadTPCH(cfg.SF)
	if err != nil {
		return nil, err
	}
	if len(sweep) == 0 {
		parts := tpch.SizesFor(cfg.SF).Parts
		for n := 20; n <= parts; n *= 10 {
			sweep = append(sweep, n)
		}
	}
	q, _ := tpch.QueryByID("Q2")
	t := &Table{
		Title:   fmt.Sprintf("Figure 10(a): Q2 scalability (SF=%g)", cfg.SF),
		Columns: []string{"Iterations", "Original", "Aggify", "Aggify+"},
		Notes: []string{
			"paper: original degrades drastically beyond a point; Aggify stays flat; Aggify+ ~10x better throughout",
		},
	}
	for _, n := range sweep {
		var cells [3]string
		for _, mode := range []Mode{Original, Aggify, AggifyPlus} {
			r, err := cfg.best(func() (*Result, error) { return env.RunTPCH(q, mode, n, cfg.Timeout) })
			if err != nil {
				return nil, err
			}
			cells[mode] = fmtResult(r)
		}
		t.AddRow(fmt.Sprintf("%d", n), cells[0], cells[1], cells[2])
	}
	return t, nil
}

// Fig10b reproduces Figure 10(b): the MinCostSupplier client program —
// execution time and data moved vs. iteration count (Experiments 2 and the
// §10.6 data-movement measurement).
func Fig10b(cfg Config, sweep []int) (*Table, error) {
	env, err := LoadTPCH(cfg.SF)
	if err != nil {
		return nil, err
	}
	if len(sweep) == 0 {
		parts := tpch.SizesFor(cfg.SF).Parts
		for n := 20; n <= parts; n *= 10 {
			sweep = append(sweep, n)
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 10(b): MinCostSupplier client program (SF=%g, RTT=%v)", cfg.SF, cfg.Profile.RTT),
		Columns: []string{"Iterations", "Original", "Aggify", "Data orig", "Data aggify", "Reduction"},
		Notes: []string{
			"paper: crossover ~2K iterations, then a consistent ~10x; data moved shrinks ~3.6x (140+n vs 38+n bytes/iter)",
		},
	}
	for _, n := range sweep {
		var orig, agg *ClientResult
		for i := 0; i < cfg.reps(); i++ {
			o, err := RunMinCostClient(env, n, Original, cfg.Profile)
			if err != nil {
				return nil, err
			}
			if orig == nil || o.Elapsed < orig.Elapsed {
				orig = o
			}
			a, err := RunMinCostClient(env, n, Aggify, cfg.Profile)
			if err != nil {
				return nil, err
			}
			if agg == nil || a.Elapsed < agg.Elapsed {
				agg = a
			}
		}
		red := "-"
		if agg.Meter.BytesToClient > 0 {
			red = fmt.Sprintf("%.1fx", float64(orig.Meter.BytesToClient)/float64(agg.Meter.BytesToClient))
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtDur(orig.Elapsed), fmtDur(agg.Elapsed),
			fmtBytes(orig.Meter.BytesToClient), fmtBytes(agg.Meter.BytesToClient), red)
	}
	return t, nil
}

// Fig10c reproduces Figure 10(c): the 50-column cumulative-ROI program —
// time and data moved vs. TOP n (Experiment 3).
func Fig10c(cfg Config, sweep []int) (*Table, error) {
	if len(sweep) == 0 {
		sweep = []int{30, 300, 3000, 30000}
	}
	maxRows := 0
	for _, n := range sweep {
		if n > maxRows {
			maxRows = n
		}
	}
	eng, err := LoadROI(maxRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 10(c): Cumulative ROI, %d columns (RTT=%v)", ROIColumns, cfg.Profile.RTT),
		Columns: []string{"Iterations", "Original", "Aggify", "Data orig", "Data aggify"},
		Notes: []string{
			"paper: ~10x beyond 3K iterations; original moves ~200 bytes/iteration, Aggify one 200-byte tuple total",
		},
	}
	for _, n := range sweep {
		var orig, agg *ClientResult
		for i := 0; i < cfg.reps(); i++ {
			o, err := RunROI(eng, n, Original, cfg.Profile)
			if err != nil {
				return nil, err
			}
			if orig == nil || o.Elapsed < orig.Elapsed {
				orig = o
			}
			a, err := RunROI(eng, n, Aggify, cfg.Profile)
			if err != nil {
				return nil, err
			}
			if agg == nil || a.Elapsed < agg.Elapsed {
				agg = a
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtDur(orig.Elapsed), fmtDur(agg.Elapsed),
			fmtBytes(orig.Meter.BytesToClient), fmtBytes(agg.Meter.BytesToClient))
	}
	return t, nil
}

// Fig11 reproduces Figure 11: loop L1 (workload W1) with varying iteration
// counts (Experiment 4).
func Fig11(cfg Config, sweep []int) (*Table, error) {
	env, err := LoadRealW(cfg.Scale)
	if err != nil {
		return nil, err
	}
	if len(sweep) == 0 {
		max := realw.SizesFor(cfg.Scale).Activities
		for n := 15; n <= max; n *= 10 {
			sweep = append(sweep, n)
		}
	}
	l, _ := realw.LoopByID("L1")
	t := &Table{
		Title:   fmt.Sprintf("Figure 11: loop L1 scalability (scale=%g)", cfg.Scale),
		Columns: []string{"Iterations", "Original", "Aggify", "Gain"},
		Notes:   []string{"paper: benefits grow with scale (pipelining + reduced data movement)"},
	}
	for _, n := range sweep {
		orig, err := cfg.best(func() (*Result, error) { return env.RunLoop(l, Original, n, cfg.Timeout) })
		if err != nil {
			return nil, err
		}
		agg, err := cfg.best(func() (*Result, error) { return env.RunLoop(l, Aggify, n, cfg.Timeout) })
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtResult(orig), fmtResult(agg), speedup(orig, agg))
	}
	return t, nil
}
