// Command httpget fetches a URL and writes the response body to stdout,
// exiting nonzero unless the status is 200. It exists so scripts/ci.sh can
// probe aggifyd's debug endpoints without depending on curl being
// installed.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget URL")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "httpget: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintf(os.Stderr, "httpget: %v\n", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "httpget: %s: %s\n", os.Args[1], resp.Status)
		os.Exit(1)
	}
}
