// Command benchgate is the CI bench-regression gate. It runs the short
// ^BenchmarkGate suite (see bench_gate_test.go), distills each benchmark to
// its best ns/op across -count runs, and compares the result against the
// committed snapshot BENCH_7.json:
//
//   - any benchmark more than -threshold (default 25%) slower than its
//     snapshot entry fails the gate;
//   - the serial ÷ parallel ns/op ratio of BenchmarkGateParallelAgg is
//     recorded as parallel_speedup and must be ≥ 2 when enforcement is
//     armed. Arming requires both the snapshot AND the current host to have
//     at least 4 CPUs: -update refuses to arm the parallel cells on a
//     smaller host (the recorded ratio would be meaningless), and a compare
//     run on a smaller host prints a loud DISARMED banner instead of
//     silently skipping (use -strict to turn the banner into a failure).
//     A ≥4-CPU host comparing against an unarmed snapshot fails outright:
//     the baseline must be re-recorded there so enforcement actually binds;
//   - the row ÷ batch ns/op ratio of BenchmarkGateBatch is recorded as
//     batch_speedup and must be ≥ 1.5 — both cells are serial, so the
//     vectorized path has to pay for itself on any host;
//   - the norewrite ÷ rewrite ns/op ratio of BenchmarkGatePushdown is
//     recorded as pushdown_speedup and must be ≥ 1.5 — the predicate-
//     pushdown rewrite has to actually pay for itself;
//   - the fullscan ÷ rangeseek ns/op ratio of BenchmarkGateRangeSeek is
//     recorded as rangeseek_speedup and must be ≥ 5 — the ordered-index
//     range seek the cost model picks has to dodge most of the scan;
//   - the interpreted ÷ compiled ns/op ratio of BenchmarkGateProcCompile is
//     recorded as proc_compile_speedup and must be ≥ 1.5 — the routine
//     compiler's slot-closure pipeline has to beat the tree-walking
//     interpreter on the same body (results are byte-identical by
//     construction; the benchmark asserts it before measuring);
//   - BenchmarkGatePlanCache/replay's warm hit rate is recorded as
//     plan_cache_hit_pct and must be ≥ 99%, and
//     BenchmarkGatePlanCache/lookup must report 0 allocs/op — a warm
//     AST-identity cache hit may not allocate;
//   - -update rewrites the snapshot with the current numbers instead of
//     comparing.
//
// Invoked via scripts/bench_regress.sh from scripts/ci.sh and `make bench`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	HitPct      float64 `json:"hit_pct,omitempty"`

	// sawAllocs distinguishes a measured 0 allocs/op from a cell that
	// never reported allocations.
	sawAllocs bool
}

type snapshot struct {
	Note       string        `json:"note"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchResult `json:"benchmarks"`
	// ParallelArmed records whether the snapshot was taken on a host where
	// the ≥2× parallel enforcement is meaningful (NumCPU >= 4). Comparing on
	// a multi-CPU host against an unarmed snapshot is a gate failure: the
	// baseline must be re-recorded there.
	ParallelArmed    bool    `json:"parallel_armed"`
	ParallelSpeedup  float64 `json:"parallel_speedup"`
	BatchSpeedup     float64 `json:"batch_speedup"`
	PushdownSpeedup  float64 `json:"pushdown_speedup"`
	RangeSeekSpeedup float64 `json:"rangeseek_speedup"`
	// ProcCompileSpeedup is interpreted ÷ compiled ns/op for the same
	// routine body; the compile-first pipeline must hold ≥ 1.5×.
	ProcCompileSpeedup float64 `json:"proc_compile_speedup"`
	PlanCacheHitPct    float64 `json:"plan_cache_hit_pct"`
	PlanCacheAllocs    float64 `json:"plan_cache_allocs"`
}

const (
	serialBench    = "BenchmarkGateParallelAgg/serial"
	parallelBench  = "BenchmarkGateParallelAgg/maxdop=4"
	batchBench     = "BenchmarkGateBatch/batch"
	rowBench       = "BenchmarkGateBatch/row"
	rewriteBench   = "BenchmarkGatePushdown/rewrite"
	norewriteBench = "BenchmarkGatePushdown/norewrite"
	rangeBench     = "BenchmarkGateRangeSeek/rangeseek"
	fullscanBench  = "BenchmarkGateRangeSeek/fullscan"
	replayBench    = "BenchmarkGatePlanCache/replay"
	lookupBench    = "BenchmarkGatePlanCache/lookup"
	compiledBench  = "BenchmarkGateProcCompile/compiled"
	interpBench    = "BenchmarkGateProcCompile/interpreted"

	// minParallelCPUs is the host size below which a 4-worker speedup ratio
	// measures scheduler contention, not parallelism.
	minParallelCPUs = 4
)

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	update := flag.Bool("update", false, "rewrite the snapshot with the current numbers")
	snapPath := flag.String("snapshot", "BENCH_7.json", "snapshot file to compare against")
	benchRe := flag.String("bench", "^BenchmarkGate", "benchmark selection regex")
	benchtime := flag.String("benchtime", "200ms", "per-benchmark measuring time")
	count := flag.Int("count", 3, "runs per benchmark (best is kept)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional slowdown vs the snapshot")
	strict := flag.Bool("strict", false, "fail (instead of warn) when parallel enforcement is disarmed on this host")
	flag.Parse()

	results, err := runBenchmarks(*benchRe, *benchtime, *count)
	if err != nil {
		fatalf("%v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmarks matched %q", *benchRe)
	}
	armed := runtime.NumCPU() >= minParallelCPUs
	cur := snapshot{
		Note:          "Bench-regression snapshot. Regenerate with: scripts/bench_regress.sh -update (parallel cells arm only on a >=4-CPU host)",
		NumCPU:        runtime.NumCPU(),
		Benchmarks:    results,
		ParallelArmed: armed,
	}
	byName := map[string]benchResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if s, ok := byName[serialBench]; ok {
		if p, ok := byName[parallelBench]; ok && p.NsPerOp > 0 {
			cur.ParallelSpeedup = round3(s.NsPerOp / p.NsPerOp)
		}
	}
	if row, ok := byName[rowBench]; ok {
		if bat, ok := byName[batchBench]; ok && bat.NsPerOp > 0 {
			cur.BatchSpeedup = round3(row.NsPerOp / bat.NsPerOp)
		}
	}
	if n, ok := byName[norewriteBench]; ok {
		if r, ok := byName[rewriteBench]; ok && r.NsPerOp > 0 {
			cur.PushdownSpeedup = round3(n.NsPerOp / r.NsPerOp)
		}
	}
	if f, ok := byName[fullscanBench]; ok {
		if r, ok := byName[rangeBench]; ok && r.NsPerOp > 0 {
			cur.RangeSeekSpeedup = round3(f.NsPerOp / r.NsPerOp)
		}
	}
	if ip, ok := byName[interpBench]; ok {
		if c, ok := byName[compiledBench]; ok && c.NsPerOp > 0 {
			cur.ProcCompileSpeedup = round3(ip.NsPerOp / c.NsPerOp)
		}
	}
	if r, ok := byName[replayBench]; ok {
		cur.PlanCacheHitPct = round3(r.HitPct)
	}
	if l, ok := byName[lookupBench]; ok {
		cur.PlanCacheAllocs = l.AllocsPerOp
	}

	for _, r := range results {
		line := fmt.Sprintf("%-44s %14.0f ns/op", r.Name, r.NsPerOp)
		if r.RowsPerSec > 0 {
			line += fmt.Sprintf(" %14.0f rows/s", r.RowsPerSec)
		}
		fmt.Println(line)
	}
	fmt.Printf("parallel speedup (serial/maxdop=4): %.2fx on %d CPUs\n", cur.ParallelSpeedup, cur.NumCPU)
	fmt.Printf("batch speedup (row/batch): %.2fx\n", cur.BatchSpeedup)
	fmt.Printf("pushdown speedup (norewrite/rewrite): %.2fx\n", cur.PushdownSpeedup)
	fmt.Printf("rangeseek speedup (fullscan/rangeseek): %.2fx\n", cur.RangeSeekSpeedup)
	fmt.Printf("proc compile speedup (interpreted/compiled): %.2fx\n", cur.ProcCompileSpeedup)
	fmt.Printf("plan cache: %.1f%% warm hit rate, %.0f allocs/op warm lookup\n", cur.PlanCacheHitPct, cur.PlanCacheAllocs)

	if *update {
		if !armed {
			// Refuse to bake a <4-CPU parallel baseline into the snapshot:
			// the cells are recorded for reference, but parallel_armed stays
			// false so a compare run can tell a real baseline from a bogus
			// one instead of silently never enforcing.
			fmt.Fprintf(os.Stderr, "benchgate: WARNING: updating on a %d-CPU host — parallel cells recorded UNARMED;\n", cur.NumCPU)
			fmt.Fprintf(os.Stderr, "benchgate: re-run scripts/bench_regress.sh -update on a >=%d-CPU host to arm the >=2x parallel enforcement\n", minParallelCPUs)
		}
		buf, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*snapPath, append(buf, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("snapshot written to %s (parallel_armed=%v)\n", *snapPath, armed)
		return
	}

	buf, err := os.ReadFile(*snapPath)
	if err != nil {
		fatalf("read snapshot: %v (run scripts/bench_regress.sh -update to create it)", err)
	}
	var prev snapshot
	if err := json.Unmarshal(buf, &prev); err != nil {
		fatalf("parse %s: %v", *snapPath, err)
	}

	// Parallel cells are exempt from the per-benchmark threshold and
	// missing/extra checks when enforcement is not armed on both sides: an
	// unarmed number measures a different machine shape, not a regression.
	parallelCell := func(name string) bool { return name == parallelBench }
	enforceParallel := armed && prev.ParallelArmed

	var failures []string
	seen := map[string]bool{}
	for _, old := range prev.Benchmarks {
		seen[old.Name] = true
		if parallelCell(old.Name) && !enforceParallel {
			continue
		}
		now, ok := byName[old.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in snapshot but did not run", old.Name))
			continue
		}
		if old.NsPerOp > 0 && now.NsPerOp > old.NsPerOp*(1+*threshold) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs snapshot %.0f (+%.0f%%, limit +%.0f%%)",
				old.Name, now.NsPerOp, old.NsPerOp,
				(now.NsPerOp/old.NsPerOp-1)*100, *threshold*100))
		}
	}
	for _, r := range results {
		if !seen[r.Name] && !(parallelCell(r.Name) && !enforceParallel) {
			failures = append(failures, fmt.Sprintf("%s: not in snapshot (run scripts/bench_regress.sh -update)", r.Name))
		}
	}
	switch {
	case armed && !prev.ParallelArmed:
		// The one silent-disarm shape that used to slip through: a multi-CPU
		// CI host comparing against a baseline recorded on a small box. Fail
		// until the baseline is re-recorded here, so the ≥2× check binds.
		failures = append(failures, fmt.Sprintf(
			"snapshot %s was recorded UNARMED on a %d-CPU host but this host has %d CPUs: re-record it here (scripts/bench_regress.sh -update) to arm parallel enforcement",
			*snapPath, prev.NumCPU, runtime.NumCPU()))
	case !armed:
		banner := fmt.Sprintf("parallel enforcement DISARMED: host has %d CPUs (< %d) — the >=2x MAXDOP-4 check did NOT run",
			runtime.NumCPU(), minParallelCPUs)
		if *strict {
			failures = append(failures, banner)
		} else {
			fmt.Fprintln(os.Stderr, "benchgate: WARNING: "+banner)
		}
	case cur.ParallelSpeedup < 2.0:
		failures = append(failures, fmt.Sprintf("parallel speedup %.2fx < 2x at MAXDOP=4 on %d CPUs",
			cur.ParallelSpeedup, runtime.NumCPU()))
	}
	// The batch ratio is CPU-count-independent (both cells are serial), so it
	// binds everywhere the pair ran.
	if cur.BatchSpeedup > 0 && cur.BatchSpeedup < 1.5 {
		failures = append(failures, fmt.Sprintf("batch speedup %.2fx < 1.5x (vectorized path not paying for itself)",
			cur.BatchSpeedup))
	}
	// So is the pushdown ratio.
	if cur.PushdownSpeedup > 0 && cur.PushdownSpeedup < 1.5 {
		failures = append(failures, fmt.Sprintf("pushdown speedup %.2fx < 1.5x (rewrite pass not paying for itself)",
			cur.PushdownSpeedup))
	}
	// And the range-seek ratio: the cost model's ordered-index pick must
	// dodge most of the full scan.
	if cur.RangeSeekSpeedup > 0 && cur.RangeSeekSpeedup < 5 {
		failures = append(failures, fmt.Sprintf("rangeseek speedup %.2fx < 5x (ordered-index range seek not paying for itself)",
			cur.RangeSeekSpeedup))
	}
	// The compile-vs-interpret ratio is serial on both sides too: the routine
	// compiler must pay for itself on any host.
	if cur.ProcCompileSpeedup > 0 && cur.ProcCompileSpeedup < 1.5 {
		failures = append(failures, fmt.Sprintf("proc compile speedup %.2fx < 1.5x (routine compiler not paying for itself)",
			cur.ProcCompileSpeedup))
	}
	// Plan-cache enforcement: both cells must have run, the warm replay hit
	// rate must stay >= 99%, and the warm AST-identity lookup must not
	// allocate.
	if r, ok := byName[replayBench]; ok && r.HitPct < 99 {
		failures = append(failures, fmt.Sprintf("plan cache warm hit rate %.1f%% < 99%%", r.HitPct))
	}
	if l, ok := byName[lookupBench]; ok && l.sawAllocs && l.AllocsPerOp > 0 {
		failures = append(failures, fmt.Sprintf("plan cache warm lookup allocates (%.0f allocs/op, want 0)", l.AllocsPerOp))
	}

	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "bench regression gate FAILED:")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("bench regression gate OK")
}

// runBenchmarks executes the gate suite and keeps, per benchmark, the best
// ns/op (and best rows/s) over all -count runs — the minimum is far more
// stable than the mean on a loaded CI host.
func runBenchmarks(benchRe, benchtime string, count int) ([]benchResult, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchRe, "-benchtime", benchtime, "-count", strconv.Itoa(count), ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s", err, out)
	}
	best := map[string]*benchResult{}
	var order []string
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var nsPerOp, rowsPerSec, allocsPerOp, hitPct float64
		sawAllocs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				nsPerOp = v
			case "rows/s":
				rowsPerSec = v
			case "allocs/op":
				allocsPerOp = v
				sawAllocs = true
			case "hit%":
				hitPct = v
			}
		}
		if nsPerOp == 0 {
			continue
		}
		r, ok := best[name]
		if !ok {
			best[name] = &benchResult{Name: name, NsPerOp: nsPerOp, RowsPerSec: rowsPerSec,
				AllocsPerOp: allocsPerOp, HitPct: hitPct, sawAllocs: sawAllocs}
			order = append(order, name)
			continue
		}
		if nsPerOp < r.NsPerOp {
			r.NsPerOp = nsPerOp
		}
		if rowsPerSec > r.RowsPerSec {
			r.RowsPerSec = rowsPerSec
		}
		if sawAllocs {
			// Worst (max) allocs across runs: a single allocating run fails.
			r.sawAllocs = true
			if allocsPerOp > r.AllocsPerOp {
				r.AllocsPerOp = allocsPerOp
			}
		}
		if hitPct > 0 && (r.HitPct == 0 || hitPct < r.HitPct) {
			// Worst (min) hit rate across runs.
			r.HitPct = hitPct
		}
	}
	results := make([]benchResult, 0, len(order))
	for _, name := range order {
		results = append(results, *best[name])
	}
	return results, nil
}

func round3(x float64) float64 {
	s, err := strconv.ParseFloat(strconv.FormatFloat(x, 'f', 3, 64), 64)
	if err != nil {
		return x
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
