#!/bin/sh
# The full CI gauntlet: formatting, vet, build, and the test suite under
# the race detector. Equivalent to `make ci`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== explain-analyze golden"
# The EXPLAIN ANALYZE output shape (operators + runtime counters, wall
# times normalized) is pinned to testdata/explain_analyze.golden.
# Regenerate intentional changes with:  go test -run TestExplainAnalyzeGolden -update .
go test -count=1 -run 'TestExplainAnalyze' .

echo "CI OK"
