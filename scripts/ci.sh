#!/bin/sh
# The full CI gauntlet: formatting, vet, build, and the test suite under
# the race detector. Equivalent to `make ci`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== tracing-overhead guard (disabled tracing must not allocate)"
go test -count=1 -run TestDisabledTracingZeroAllocs ./internal/trace

echo "== aggifyd debug endpoint smoke"
tmp="$(mktemp -d)"
go build -o "$tmp/aggifyd" ./cmd/aggifyd
"$tmp/aggifyd" -addr 127.0.0.1:0 -http 127.0.0.1:0 >"$tmp/aggifyd.log" 2>&1 &
daemon=$!
cleanup() {
	kill "$daemon" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT
# The daemon announces the debug listener's bound port in its log.
addr=""
for _ in $(seq 1 50); do
	addr="$(sed -n 's/.*debug http on \([0-9.:]*\).*/\1/p' "$tmp/aggifyd.log" | head -n 1)"
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "aggifyd debug listener never announced itself:"
	cat "$tmp/aggifyd.log"
	exit 1
fi
go run ./scripts/httpget "http://$addr/healthz" | grep -q '"status":"ok"'
go run ./scripts/httpget "http://$addr/metrics" | grep -q '^aggifyd_requests_total'
echo "debug endpoints OK on $addr"

echo "== bench-regression gate"
# Short ^BenchmarkGate suite vs the committed BENCH_4.json snapshot; accept
# intentional changes with:  scripts/bench_regress.sh -update
./scripts/bench_regress.sh

echo "== explain-analyze golden"
# The EXPLAIN ANALYZE output shape (operators + runtime counters, wall
# times normalized) is pinned to testdata/explain_analyze.golden.
# Regenerate intentional changes with:  go test -run TestExplainAnalyzeGolden -update .
go test -count=1 -run 'TestExplainAnalyze' .

echo "== rewrite-trace golden"
# The logical rewrite pass's EXPLAIN trace (the `rewrites:` header and the
# per-node [rw:rule] annotations) for three representative queries is pinned
# to testdata/rewrite_trace.golden.
# Regenerate intentional changes with:  go test -run TestRewriteTraceGolden -update .
go test -count=1 -run 'TestRewriteTraceGolden' .

echo "CI OK"
