#!/bin/sh
# The full CI gauntlet: formatting, vet, static analyzers, build, and the
# test suite under the race detector. Equivalent to `make ci`.
#
# Each stage reports its wall time so slow stages are obvious in CI logs.
set -eu
cd "$(dirname "$0")/.."

ci_start="$(date +%s)"
stage_start=""
stage_name=""

# stage NAME: close out the previous stage (printing its wall time) and
# open a new one.
stage() {
	now="$(date +%s)"
	if [ -n "$stage_name" ]; then
		echo "   -- ${stage_name}: $((now - stage_start))s"
	fi
	stage_name="$1"
	stage_start="$now"
	echo "== $1"
}

stage "gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

stage "go vet"
go vet ./...

stage "static analyzers (staticcheck, govulncheck)"
# Optional analyzers: run when installed, otherwise skip LOUDLY. CI images
# bake these in; local checkouts without them still get a green-but-warned
# run instead of a hard dependency.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "WARNING: staticcheck not installed - stage SKIPPED"
	echo "WARNING: install with: go install honnef.co/go/tools/cmd/staticcheck@latest"
fi
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "WARNING: govulncheck not installed - stage SKIPPED"
	echo "WARNING: install with: go install golang.org/x/vuln/cmd/govulncheck@latest"
fi

stage "go build"
go build ./...

stage "go test -race"
go test -race ./...

stage "tracing-overhead guard (disabled tracing must not allocate)"
go test -count=1 -run TestDisabledTracingZeroAllocs ./internal/trace

stage "aggifyd debug endpoint smoke"
tmp="$(mktemp -d)"
go build -o "$tmp/aggifyd" ./cmd/aggifyd
"$tmp/aggifyd" -addr 127.0.0.1:0 -http 127.0.0.1:0 >"$tmp/aggifyd.log" 2>&1 &
daemon=$!
daemon2=""
daemon3=""
cleanup() {
	kill "$daemon" 2>/dev/null || true
	[ -n "$daemon2" ] && kill -9 "$daemon2" 2>/dev/null || true
	[ -n "$daemon3" ] && kill "$daemon3" 2>/dev/null || true
	# When CI_ARTIFACT_DIR is set (the GitHub Actions workflow does), keep
	# the daemon logs around so a failed run can upload them as artifacts.
	if [ -n "${CI_ARTIFACT_DIR:-}" ]; then
		mkdir -p "$CI_ARTIFACT_DIR"
		cp "$tmp"/*.log "$CI_ARTIFACT_DIR"/ 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT
# The daemon announces the debug listener's bound port in its log.
addr=""
for _ in $(seq 1 50); do
	addr="$(sed -n 's/.*debug http on \([0-9.:]*\).*/\1/p' "$tmp/aggifyd.log" | head -n 1)"
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "aggifyd debug listener never announced itself:"
	cat "$tmp/aggifyd.log"
	exit 1
fi
go run ./scripts/httpget "http://$addr/healthz" | grep -q '"status":"ok"'
go run ./scripts/httpget "http://$addr/metrics" | grep -q '^aggifyd_requests_total'
go run ./scripts/httpget "http://$addr/metrics" | grep -q '^aggifyd_txn_begins_total'
go run ./scripts/httpget "http://$addr/metrics" | grep -q '^aggifyd_stmt_fingerprints'
echo "debug endpoints OK on $addr"

stage "system catalog over TCP smoke"
go build -o "$tmp/sqlsh" ./cmd/sqlsh
tcp_addr="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$tmp/aggifyd.log" | head -n 1)"
if [ -z "$tcp_addr" ]; then
	echo "aggifyd never announced its TCP listener:"
	cat "$tmp/aggifyd.log"
	exit 1
fi
for _ in 1 2 3; do
	printf 'select 1 + 1;\n' | "$tmp/sqlsh" -connect "$tcp_addr" >/dev/null
done
calls="$(printf "select calls from aggify_stat_statements where query = 'select ? + ?';\n" |
	"$tmp/sqlsh" -connect "$tcp_addr" | sed -n '2p')"
if [ "$calls" != "3" ]; then
	echo "aggify_stat_statements over TCP: calls=$calls (want 3)"
	exit 1
fi
echo "system catalog OK (select ? + ? recorded 3 calls)"

stage "fingerprint-stats overhead guard (warm hot path must not allocate)"
go test -count=1 -run TestStmtStatsWarmZeroAllocs ./internal/engine

stage "kill-and-recover smoke (WAL durability)"
go build -o "$tmp/sqlsh" ./cmd/sqlsh
datadir="$tmp/data"

# wait_addr LOGFILE PATTERN: echo the address the daemon announced.
wait_addr() {
	a=""
	for _ in $(seq 1 50); do
		a="$(sed -n "s/.*$2 \([0-9.:]*\).*/\1/p" "$1" | head -n 1)"
		[ -n "$a" ] && break
		sleep 0.1
	done
	if [ -z "$a" ]; then
		echo "daemon never announced '$2':" >&2
		cat "$1" >&2
		exit 1
	fi
	echo "$a"
}

"$tmp/aggifyd" -addr 127.0.0.1:0 -data-dir "$datadir" -wal-sync always >"$tmp/d1.log" 2>&1 &
daemon2=$!
addr2="$(wait_addr "$tmp/d1.log" 'listening on')"

# Committed work that must survive the crash.
cat >"$tmp/seed.sql" <<'SQL'
create table durable (n int);
insert into durable values (1), (2), (3);
create table stream_t (n int);
SQL
"$tmp/sqlsh" -connect "$addr2" "$tmp/seed.sql" >/dev/null

# An explicit transaction held open across the crash: its insert must NOT
# survive. The sleep keeps the connection (and the open txn) alive until
# the daemon is killed.
{
	printf 'begin transaction;\ninsert into durable values (999);\nGO\n'
	sleep 5
} | "$tmp/sqlsh" -connect "$addr2" >/dev/null 2>&1 &
txnconn=$!

# A stream of auto-commit writes, SIGKILLed mid-flight.
awk 'BEGIN { for (i = 0; i < 500; i++) printf "insert into stream_t values (%d);\nGO\n", i }' >"$tmp/stream.sql"
{ "$tmp/sqlsh" -connect "$addr2" <"$tmp/stream.sql" >/dev/null 2>&1 || true; } &
streamer=$!
sleep 0.4
kill -9 "$daemon2"
wait "$streamer" 2>/dev/null || true
kill "$txnconn" 2>/dev/null || true
wait "$txnconn" 2>/dev/null || true
daemon2=""

# Restart over the same data directory: recovery replays checkpoint + WAL.
"$tmp/aggifyd" -addr 127.0.0.1:0 -data-dir "$datadir" -wal-sync always >"$tmp/d2.log" 2>&1 &
daemon3=$!
addr3="$(wait_addr "$tmp/d2.log" 'listening on')"
grep -q 'recovered' "$tmp/d2.log"

cat >"$tmp/verify.sql" <<'SQL'
select count(*) as committed_rows from durable;
select count(*) as leaked_uncommitted from durable where n = 999;
SQL
out="$("$tmp/sqlsh" -connect "$addr3" "$tmp/verify.sql")"
committed="$(printf '%s\n' "$out" | sed -n '2p')"
leaked="$(printf '%s\n' "$out" | sed -n '5p')"
if [ "$committed" != "3" ] || [ "$leaked" != "0" ]; then
	echo "kill-and-recover failed: committed=$committed (want 3) leaked=$leaked (want 0)"
	printf '%s\n' "$out"
	exit 1
fi
# The interrupted stream recovers to a consistent prefix (any count is fine;
# the query failing would mean the table or WAL tail came back corrupt).
"$tmp/sqlsh" -connect "$addr3" >/dev/null <<'SQL'
select count(*) from stream_t;
SQL
kill "$daemon3" && wait "$daemon3" 2>/dev/null || true
daemon3=""
echo "kill-and-recover OK (committed rows survived, open txn discarded)"

stage "applicability coverage ratchet"
# The corpus scan (Table 1 + compile-tier coverage) must match the committed
# APPLICABILITY.json: coverage may only go up, and any change must be
# ratified with:  go run ./cmd/applicability -update
go run ./cmd/applicability -check

stage "bench-regression gate"
# Short ^BenchmarkGate suite vs the committed BENCH_7.json snapshot; accept
# intentional changes with:  scripts/bench_regress.sh -update
./scripts/bench_regress.sh

stage "explain-analyze golden"
# The EXPLAIN ANALYZE output shape (operators + runtime counters, wall
# times normalized) is pinned to testdata/explain_analyze.golden.
# Regenerate intentional changes with:  go test -run TestExplainAnalyzeGolden -update .
go test -count=1 -run 'TestExplainAnalyze' .

stage "rewrite-trace golden"
# The logical rewrite pass's EXPLAIN trace (the `rewrites:` header and the
# per-node [rw:rule] annotations) for three representative queries is pinned
# to testdata/rewrite_trace.golden.
# Regenerate intentional changes with:  go test -run TestRewriteTraceGolden -update .
go test -count=1 -run 'TestRewriteTraceGolden' .

stage "done"
echo "CI OK (total $(( $(date +%s) - ci_start ))s)"
