#!/bin/sh
# Bench-regression gate: runs the short ^BenchmarkGate suite and compares it
# against the committed BENCH_5.json snapshot (fails on >25% slowdown, on a
# batch or pushdown speedup below 1.5x, and — when both the snapshot and the
# host have >= 4 CPUs — on a parallel-aggregation speedup below 2x; smaller
# hosts print a loud DISARMED warning, or fail with -strict).
#
# Accept current numbers as the new baseline with:
#
#	scripts/bench_regress.sh -update
#
# (-update on a <4-CPU host records the parallel cells unarmed; a >=4-CPU
# compare run then fails until the baseline is re-recorded there.)
set -eu
cd "$(dirname "$0")/.."
exec go run ./scripts/benchgate "$@"
