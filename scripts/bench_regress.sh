#!/bin/sh
# Bench-regression gate: runs the short ^BenchmarkGate suite and compares it
# against the committed BENCH_7.json snapshot (fails on >25% slowdown, on a
# batch, pushdown, or proc-compile speedup below 1.5x, on a rangeseek
# speedup below 5x, on a
# plan-cache warm hit rate below 99% or any allocation on the warm lookup
# path, and — when both the snapshot and the host have >= 4 CPUs — on a
# parallel-aggregation speedup below 2x; smaller hosts print a loud DISARMED
# warning, or fail with -strict).
#
# Accept current numbers as the new baseline with:
#
#	scripts/bench_regress.sh -update
#
# (-update on a <4-CPU host records the parallel cells unarmed; a >=4-CPU
# compare run then fails until the baseline is re-recorded there.)
set -eu
cd "$(dirname "$0")/.."
exec go run ./scripts/benchgate "$@"
