#!/bin/sh
# Bench-regression gate: runs the short ^BenchmarkGate suite and compares it
# against the committed BENCH_4.json snapshot (fails on >25% slowdown and,
# on hosts with >= 4 CPUs, on a parallel-aggregation speedup below 2x).
#
# Accept current numbers as the new baseline with:
#
#	scripts/bench_regress.sh -update
set -eu
cd "$(dirname "$0")/.."
exec go run ./scripts/benchgate "$@"
