package aggify_test

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"aggify"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// timeRe matches the wall-clock annotations in EXPLAIN ANALYZE output; they
// are the only non-deterministic part of the tree and get normalized before
// the golden comparison.
var timeRe = regexp.MustCompile(`time=[^ )]+`)

// workersRe normalizes worker and partition counts in parallel plans; the
// golden pins the shape, not the DOP heuristic's exact pick.
var workersRe = regexp.MustCompile(`(workers|parts)=\d+`)

func runExplain(t *testing.T, sql string) string {
	t.Helper()
	return runExplainDB(t, newDemoDB(t), sql)
}

func runExplainDB(t *testing.T, db *aggify.DB, sql string) string {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var b strings.Builder
	for _, r := range rows.Data {
		if len(r) != 1 {
			t.Fatalf("explain row width %d", len(r))
		}
		b.WriteString(r[0].Str())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExplainAnalyzeGolden locks down the EXPLAIN and EXPLAIN ANALYZE output
// shape against a golden file (counters included; wall-clock times
// normalized). Regenerate with: go test -run TestExplainAnalyzeGolden -update .
func TestExplainAnalyzeGolden(t *testing.T) {
	const query = `select s_name, count(*) as n
from supplier, partsupp
where ps_suppkey = s_suppkey and s_suppkey >= 10
group by s_name
order by s_name`

	var b strings.Builder
	b.WriteString("-- EXPLAIN\n")
	b.WriteString(runExplain(t, "EXPLAIN "+query))
	b.WriteString("\n-- EXPLAIN ANALYZE\n")
	b.WriteString(timeRe.ReplaceAllString(runExplain(t, "EXPLAIN ANALYZE "+query), "time=X"))

	// A parallel plan: grouped aggregation over a table that clears the
	// planner's row threshold, at MAXDOP 4. Worker/partition counts are
	// normalized so the golden pins the operator shape rather than the DOP
	// heuristic's exact pick.
	par := newDemoDB(t)
	if err := par.Exec("create table metrics (k int, v int)"); err != nil {
		t.Fatal(err)
	}
	tab, ok := par.Engine().Table("metrics")
	if !ok {
		t.Fatal("metrics table missing")
	}
	for i := 0; i < 6000; i++ {
		if err := tab.Insert(nil, []aggify.Value{aggify.Int(int64(i % 7)), aggify.Int(int64(i % 101))}); err != nil {
			t.Fatal(err)
		}
	}
	par.SetMaxDOP(4)
	const parQuery = "select k, count(*) as n, sum(v) as total from metrics group by k"
	b.WriteString("\n-- EXPLAIN (parallel, maxdop=4)\n")
	b.WriteString(workersRe.ReplaceAllString(runExplainDB(t, par, "EXPLAIN "+parQuery), "$1=N"))
	b.WriteString("\n-- EXPLAIN ANALYZE (parallel, maxdop=4)\n")
	b.WriteString(workersRe.ReplaceAllString(
		timeRe.ReplaceAllString(runExplainDB(t, par, "EXPLAIN ANALYZE "+parQuery), "time=X"), "$1=N"))

	// A rewrite-pass plan: the selective predicate above the derived table is
	// pushed inside and becomes an index seek; the `rewrites:` header and the
	// [rw:rule] annotations are part of the pinned shape.
	const pushQuery = `select q.ps_suppkey, q.ps_supplycost
from (select ps_partkey, ps_suppkey, ps_supplycost from partsupp) q
where q.ps_partkey = 1`
	b.WriteString("\n-- EXPLAIN (rewrite pushdown)\n")
	b.WriteString(runExplain(t, "EXPLAIN "+pushQuery))
	b.WriteString("\n-- EXPLAIN ANALYZE (rewrite pushdown)\n")
	b.WriteString(timeRe.ReplaceAllString(runExplain(t, "EXPLAIN ANALYZE "+pushQuery), "time=X"))
	got := b.String()

	golden := filepath.Join("testdata", "explain_analyze.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN output drifted from %s.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestExplainAnalyzeCountersNonZero asserts the analyze tree actually carries
// runtime counters (not just the static shape).
func TestExplainAnalyzeCountersNonZero(t *testing.T) {
	out := runExplain(t, "EXPLAIN ANALYZE select ps_partkey, minCostSupp(ps_partkey) from partsupp order by ps_partkey")
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "reads=") {
		t.Fatalf("missing runtime counters:\n%s", out)
	}
	if !strings.Contains(out, "-- stats:") {
		t.Fatalf("missing session stats footer:\n%s", out)
	}
	if strings.Contains(out, "reads=0\n-- stats") {
		t.Fatalf("root operator accrued no reads:\n%s", out)
	}
}
