// Benchmark harness: one testing.B benchmark per paper table and figure
// (§10), plus ablation benches for the design choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full paper-style sweeps (with wider parameter ranges and rendered rows)
// come from cmd/aggify-bench. The scale factors here are laptop-sized; the
// shapes, not the absolute numbers, are the reproduction target (see
// EXPERIMENTS.md).
package aggify_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"aggify"
	"aggify/internal/ast"
	"aggify/internal/bench"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/tpch"
	"aggify/internal/wire"
	"aggify/internal/workloads/applicability"
	"aggify/internal/workloads/realw"
	"aggify/internal/workloads/rubis"
)

const (
	benchSF    = 0.01
	benchScale = 0.5
)

func tpchEnv(b *testing.B) *bench.Env {
	b.Helper()
	env, err := bench.LoadTPCH(benchSF)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// runTPCH benchmarks one (query, mode) cell of Figure 9(a) / Table 2,
// reporting the logical reads Table 2 tabulates.
func runTPCH(b *testing.B, id string, mode bench.Mode) {
	env := tpchEnv(b)
	q, ok := tpch.QueryByID(id)
	if !ok {
		b.Fatalf("no query %s", id)
	}
	b.ResetTimer()
	var reads int64
	for i := 0; i < b.N; i++ {
		r, err := env.RunTPCH(q, mode, 0, 5*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if r.TimedOut {
			b.Fatal("timed out")
		}
		reads = r.Stats.TotalReads()
	}
	b.ReportMetric(float64(reads), "logical-reads")
}

// ----- Table 1 -----

func BenchmarkTable1Applicability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := applicability.ScanAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != 3 {
			b.Fatal("bad scan")
		}
	}
}

// ----- Figure 9(a) + Table 2 (same runs; reads reported as a metric) -----

func BenchmarkFig9a(b *testing.B) {
	for _, id := range []string{"Q2", "Q13", "Q14", "Q18", "Q19", "Q21"} {
		for _, mode := range []bench.Mode{bench.Original, bench.Aggify, bench.AggifyPlus} {
			b.Run(fmt.Sprintf("%s/%s", id, mode), func(b *testing.B) {
				runTPCH(b, id, mode)
			})
		}
	}
}

func BenchmarkTable2LogicalReads(b *testing.B) {
	// Table 2 is regenerated from the same executions as Figure 9(a); this
	// bench exercises the counter path explicitly on the densest query.
	runTPCH(b, "Q18", bench.Original)
}

// ----- Figure 9(b) -----

func BenchmarkFig9b(b *testing.B) {
	eng, err := bench.LoadRubis(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range rubis.Scenarios() {
		for _, mode := range []bench.Mode{bench.Original, bench.Aggify} {
			b.Run(fmt.Sprintf("%s/%s", sc.Name, mode), func(b *testing.B) {
				var last *bench.ClientResult
				for i := 0; i < b.N; i++ {
					r, err := bench.RunRubisScenario(eng, sc, mode, wire.LAN, benchScale)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(float64(last.Meter.BytesToClient), "bytes-to-client")
				// ns/op measures client compute only; the figure's quantity
				// adds the deterministic network time.
				b.ReportMetric(float64(last.Elapsed.Microseconds()), "virtual-elapsed-us")
			})
		}
	}
}

// ----- Figure 9(c) -----

func BenchmarkFig9c(b *testing.B) {
	env, err := bench.LoadRealW(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range realw.Loops() {
		for _, mode := range []bench.Mode{bench.Original, bench.Aggify} {
			b.Run(fmt.Sprintf("%s/%s", l.ID, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := env.RunLoop(l, mode, 0, 5*time.Minute)
					if err != nil {
						b.Fatal(err)
					}
					if r.TimedOut {
						b.Fatal("timed out")
					}
				}
			})
		}
	}
}

// ----- Figure 10(a): Q2 iteration sweep -----

func BenchmarkFig10a(b *testing.B) {
	env := tpchEnv(b)
	q, _ := tpch.QueryByID("Q2")
	maxParts := tpch.SizesFor(benchSF).Parts
	for _, n := range []int{20, 200, maxParts} {
		for _, mode := range []bench.Mode{bench.Original, bench.Aggify, bench.AggifyPlus} {
			b.Run(fmt.Sprintf("iters=%d/%s", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := env.RunTPCH(q, mode, n, 5*time.Minute)
					if err != nil {
						b.Fatal(err)
					}
					if r.TimedOut {
						b.Fatal("timed out")
					}
				}
			})
		}
	}
}

// ----- Figure 10(b): MinCostSupplier client program + data movement -----

func BenchmarkFig10b(b *testing.B) {
	env := tpchEnv(b)
	for _, n := range []int{200, 2000} {
		for _, mode := range []bench.Mode{bench.Original, bench.Aggify} {
			b.Run(fmt.Sprintf("iters=%d/%s", n, mode), func(b *testing.B) {
				var last *bench.ClientResult
				for i := 0; i < b.N; i++ {
					r, err := bench.RunMinCostClient(env, n, mode, wire.LAN)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(float64(last.Meter.BytesToClient), "bytes-to-client")
				b.ReportMetric(float64(last.Elapsed.Microseconds()), "virtual-elapsed-us")
			})
		}
	}
}

// ----- Figure 10(c): Cumulative ROI, 50 columns -----

func BenchmarkFig10c(b *testing.B) {
	eng, err := bench.LoadROI(30000)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{300, 30000} {
		for _, mode := range []bench.Mode{bench.Original, bench.Aggify} {
			b.Run(fmt.Sprintf("iters=%d/%s", n, mode), func(b *testing.B) {
				var last *bench.ClientResult
				for i := 0; i < b.N; i++ {
					r, err := bench.RunROI(eng, n, mode, wire.LAN)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(float64(last.Meter.BytesToClient), "bytes-to-client")
				b.ReportMetric(float64(last.Elapsed.Microseconds()), "virtual-elapsed-us")
			})
		}
	}
}

// ----- Figure 11: loop L1 sweep -----

func BenchmarkFig11(b *testing.B) {
	env, err := bench.LoadRealW(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	l, _ := realw.LoopByID("L1")
	maxIters := realw.SizesFor(benchScale).Activities
	for _, n := range []int{100, 1000, maxIters} {
		for _, mode := range []bench.Mode{bench.Original, bench.Aggify} {
			b.Run(fmt.Sprintf("iters=%d/%s", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.RunLoop(l, mode, n, 5*time.Minute); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ----- Ablations -----

// BenchmarkAblationWorktable isolates the disk-backed worktable cost the
// paper attributes to cursors (§2.3): the same cursor loop with tempdb-style
// spill files versus purely in-memory materialization.
func BenchmarkAblationWorktable(b *testing.B) {
	env := tpchEnv(b)
	q, _ := tpch.QueryByID("Q18")
	for _, disk := range []bool{true, false} {
		name := "disk"
		if !disk {
			name = "memory"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sess := env.Eng.NewSession()
				sess.InMemoryWorktables = !disk
				driver := parser.MustParse(q.Driver(500))[0].(*ast.QueryStmt).Query
				if _, _, err := sess.Query(driver, sess.Ctx(nil, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDecorrelation isolates the planner rewrite that gives
// Aggify+ its set-oriented plans (Q13 with and without decorrelation).
func BenchmarkAblationDecorrelation(b *testing.B) {
	env := tpchEnv(b)
	q, _ := tpch.QueryByID("Q13")
	for _, on := range []bool{true, false} {
		name := "decorrelated"
		if !on {
			name = "apply-per-row"
		}
		disable := !on
		b.Run(name, func(b *testing.B) {
			// The plan cache keys include planner options, so both
			// variants coexist in the shared engine.
			for i := 0; i < b.N; i++ {
				r, err := env.RunDriverSession(q.Driver(0), bench.AggifyPlus, 5*time.Minute,
					func(sess *engine.Session) { sess.Opts.DisableDecorrelation = disable })
				if err != nil {
					b.Fatal(err)
				}
				if r.TimedOut {
					b.Fatal("timed out")
				}
			}
		})
	}
}

// BenchmarkAblationCompiledAggregate compares the compiled aggregate bodies
// (the analogue of the paper emitting C#) against the tree-walking
// interpreter on the same generated aggregate.
func BenchmarkAblationCompiledAggregate(b *testing.B) {
	src := `
create table vals (v int);
GO
create function sumAll() returns float as
begin
  declare @v int;
  declare @s float = 0;
  declare c cursor for select v from vals;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
    set @s = @s + @v * 2;
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return @s;
end`
	build := func(interpreted bool) *aggify.DB {
		db := aggify.Open()
		if err := db.Exec(src); err != nil {
			b.Fatal(err)
		}
		var ins strings.Builder
		ins.WriteString("insert into vals values (0)")
		for i := 1; i < 500; i++ {
			fmt.Fprintf(&ins, ", (%d)", i)
		}
		for j := 0; j < 20; j++ {
			if err := db.Exec(ins.String()); err != nil {
				b.Fatal(err)
			}
		}
		res, err := db.AggifyFunction("sumAll", aggify.TransformOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if interpreted {
			// Re-register the generated aggregate through the interpreter-
			// only path.
			aggName := strings.ToLower("sumall_c_agg1")
			def, ok := db.Engine().AggregateSource(aggName)
			if !ok {
				b.Fatalf("no aggregate source %s (have %v)", aggName, res.AggregateSources)
			}
			if err := db.Engine().RegisterAggregateSpec(interp.InterpretedAggSpec(def, false)); err != nil {
				b.Fatal(err)
			}
			db.Engine().InvalidatePlans()
		}
		return db
	}
	for _, interpreted := range []bool{false, true} {
		name := "compiled"
		if interpreted {
			name = "interpreted"
		}
		db := build(interpreted)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Call("sumAll"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFetchSize shows the client batching trade-off: smaller
// fetch sizes mean more round trips for the original cursor loops.
func BenchmarkAblationFetchSize(b *testing.B) {
	eng, err := bench.LoadROI(30000)
	if err != nil {
		b.Fatal(err)
	}
	for _, fetchSize := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("fetch=%d", fetchSize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunROIWithFetchSize(eng, 3000, fetchSize, bench.Original, wire.LAN); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelMerge exercises the aggregate Merge contract:
// serial versus parallel aggregation of a large grouped SUM.
func BenchmarkAblationParallelMerge(b *testing.B) {
	env := tpchEnv(b)
	query := "select l_suppkey, sum(l_extendedprice), count(*) from lineitem group by l_suppkey"
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sess := env.Eng.NewSession()
			if workers > 1 {
				sess.Opts.Parallelism = workers
			}
			stmts := parser.MustParse(query)
			q := stmts[0].(*ast.QueryStmt).Query
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sess.Query(q, sess.Ctx(nil, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrderEnforcement compares Eq. 6's enforced streaming
// aggregate (sort below, serial) with the unordered hash path on the same
// order-insensitive aggregation.
func BenchmarkAblationOrderEnforcement(b *testing.B) {
	db := aggify.Open()
	if err := db.Exec(`
create table series (k int, v float);
GO
create aggregate FoldAgg(@v float) returns float as
begin
  fields (@acc float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false begin set @acc = 0; set @isInitialized = true; end
    set @acc = @acc + @v;
  end
  terminate begin return @acc; end
end`); err != nil {
		b.Fatal(err)
	}
	var ins strings.Builder
	ins.WriteString("insert into series values (0, 0.5)")
	for i := 1; i < 1000; i++ {
		fmt.Fprintf(&ins, ", (%d, %g)", i, float64(i%97)/7)
	}
	for j := 0; j < 10; j++ {
		if err := db.Exec(ins.String()); err != nil {
			b.Fatal(err)
		}
	}
	cases := map[string]string{
		"unordered": "select FoldAgg(q.v) from (select v from series) q",
		"enforced":  "select FoldAgg(q.v) from (select v from series order by k) q option (order enforced)",
	}
	for name, sql := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryScalar(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
