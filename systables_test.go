package aggify_test

import (
	"net"
	"strings"
	"testing"

	"aggify"
)

// The scripted workload behind the embedded-vs-TCP identity test: a few
// distinct statement shapes, some executed repeatedly with different
// literals (which must collapse to one fingerprint each).
var statWorkload = []string{
	"create table obs (n int, s varchar(10))",
	"insert into obs values (1, 'a')",
	"insert into obs values (2, 'b')",
	"insert into obs values (3, 'c')",
	"select n from obs where n > 0",
	"select n from obs where n > 1",
	"select s from obs",
}

// statQuery projects only deterministic columns (no timings) and filters
// to the workload's templates, so both transports must agree exactly.
const statQuery = `select query, calls, rows, logical_reads
from aggify_stat_statements
where query like '%obs%'
order by query`

func formatRows(cols []string, rows [][]aggify.Value) string {
	var b strings.Builder
	b.WriteString(strings.Join(cols, "|"))
	b.WriteByte('\n')
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.Display())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestStatStatementsEmbeddedVsTCPIdentical runs the same workload through
// the embedded facade and over a real TCP connection and asserts the
// canonical stats query renders byte-identically.
func TestStatStatementsEmbeddedVsTCPIdentical(t *testing.T) {
	// Embedded.
	db := aggify.Open()
	for _, stmt := range statWorkload {
		if err := db.Exec(stmt); err != nil {
			t.Fatalf("embedded %q: %v", stmt, err)
		}
	}
	rows, err := db.Query(statQuery)
	if err != nil {
		t.Fatal(err)
	}
	embedded := formatRows(rows.Columns, rows.Data)

	// Over TCP against a fresh engine.
	db2 := aggify.Open()
	srv := db2.NewServer()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	defer func() {
		lis.Close()
		<-done
	}()
	conn, err := aggify.Dial(lis.Addr().String(), aggify.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, stmt := range statWorkload {
		if err := conn.Exec(stmt); err != nil {
			t.Fatalf("tcp %q: %v", stmt, err)
		}
	}
	res, err := conn.ExecResults(statQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 {
		t.Fatalf("tcp stats query returned %d result sets", len(res.Sets))
	}
	tcp := formatRows(res.Sets[0].Columns, res.Sets[0].Rows)

	if embedded != tcp {
		t.Fatalf("stat_statements diverge between transports:\nembedded:\n%s\ntcp:\n%s", embedded, tcp)
	}
	// Sanity: the workload's repeated shapes really collapsed.
	if !strings.Contains(embedded, "insert into obs values (?, ?)|3|") {
		t.Fatalf("insert template missing or calls wrong:\n%s", embedded)
	}
	if !strings.Contains(embedded, "select n from obs where n > ?|2|") {
		t.Fatalf("select template missing or calls wrong:\n%s", embedded)
	}
}
