package aggify_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRewriteTraceGolden locks down the EXPLAIN rewrite trace (the `rewrites:`
// header plus the [rw:rule] node annotations) for three representative
// queries: predicate pushdown into a derived table, constant folding, and
// redundant-sort elimination. Regenerate with:
// go test -run TestRewriteTraceGolden -update .
func TestRewriteTraceGolden(t *testing.T) {
	db := newDemoDB(t)
	queries := []struct {
		label, sql string
	}{
		{"pushdown into derived", `EXPLAIN select q.ps_suppkey, q.ps_supplycost
from (select ps_partkey, ps_suppkey, ps_supplycost from partsupp) q
where q.ps_partkey = 1`},
		{"constant folding", `EXPLAIN select s_name from supplier
where 1 + 1 = 2 and s_suppkey >= 10 and 'a' = 'b' or null is not null`},
		{"redundant sort", `EXPLAIN select q.s_name
from (select top 5 s_name from supplier order by s_name) q
order by s_name`},
	}

	var b strings.Builder
	for _, q := range queries {
		b.WriteString("-- " + q.label + "\n")
		b.WriteString(runExplainDB(t, db, q.sql))
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "rewrite_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("rewrite trace drifted from %s.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}
